"""Behavioural skeletons: ⟨parallel pattern, autonomic manager⟩ pairs.

"A behavioural skeleton is a pair ⟨P, M_C⟩, where P is a well known
parallelism exploitation pattern and M_C is an AM taking care of a
concern C in the computation of P." (§3)

A :class:`BehaviouralSkeleton` bundles the pattern's *mechanism* (the
simulated farm/stage entities), its GCM composite component with the AM
and ABC in the membrane, and the manager itself.  The builders assemble
the two configurations the paper evaluates:

* :func:`build_farm_bs` — a single task-farm BS (Figure 3's set-up);
* :func:`build_three_stage_pipeline` — the Figure 4 application,
  ``pipeline(seq producer, farm(seq) filter, seq consumer)`` with the
  four-manager hierarchy AM_A / AM_P / AM_F / AM_C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..gcm.abc_controller import (
    AutonomicBehaviourController,
    FarmABC,
    ProducerABC,
    StageABC,
)
from ..gcm.component import Component, CompositeComponent
from ..gcm.controllers import (
    BindingController,
    ContentController,
    LifecycleController,
    install_standard_controllers,
)
from ..sim.engine import Simulator
from ..sim.farm import SimFarm
from ..sim.network import Network
from ..sim.pipeline import Forwarder, SeqStage, SimPipeline
from ..sim.queues import Store
from ..sim.resources import Node, NodePredicate, ResourceManager, any_node
from ..sim.trace import TraceRecorder
from ..sim.workload import TaskSource, WorkModel
from ..skeletons.ast import Farm as FarmSkel
from ..skeletons.ast import Pipe as PipeSkel
from ..skeletons.ast import Seq as SeqSkel
from ..skeletons.ast import Skeleton
from .contracts import Contract
from .manager import AutonomicManager
from .skeleton_manager import (
    ConsumerManager,
    FarmManager,
    PipelineManager,
    ProducerManager,
)

__all__ = ["BehaviouralSkeleton", "FarmBS", "PipelineApp", "build_farm_bs", "build_map_bs", "build_three_stage_pipeline"]

AM_CONTROLLER = "autonomic-manager"


@dataclass
class BehaviouralSkeleton:
    """⟨pattern, manager⟩ plus the GCM component realising it."""

    pattern: Skeleton
    manager: AutonomicManager
    component: CompositeComponent
    abc: Optional[AutonomicBehaviourController] = None
    children: List["BehaviouralSkeleton"] = field(default_factory=list)

    def assign_contract(self, contract: Contract) -> None:
        """Hand the user SLA to this BS's (top-level) manager."""
        self.manager.assign_contract(contract)

    @property
    def trace(self) -> TraceRecorder:
        return self.manager.trace


def _make_component(name: str, manager: AutonomicManager, abc: Any) -> CompositeComponent:
    comp = install_standard_controllers(CompositeComponent(name))
    comp.add_controller(AM_CONTROLLER, manager)
    if abc is not None:
        comp.add_controller(AutonomicBehaviourController.NAME, abc)
    comp.add_server_interface(
        "contract", manager.assign_contract, functional=False
    )
    return comp


@dataclass
class FarmBS(BehaviouralSkeleton):
    """A task-farm behavioural skeleton with its simulated mechanism."""

    farm: SimFarm = None  # type: ignore[assignment]
    resources: ResourceManager = None  # type: ignore[assignment]

    @property
    def farm_manager(self) -> FarmManager:
        assert isinstance(self.manager, FarmManager)
        return self.manager

    def current_pattern(self) -> FarmSkel:
        """The skeleton tree reflecting the *live* parallelism degree.

        ``pattern`` records the configuration at build time; the manager
        reconfigures the mechanism underneath it, and this accessor
        re-reads the degree so cost-model queries stay truthful.
        """
        assert isinstance(self.pattern, FarmSkel)
        return self.pattern.with_degree(max(1, self.farm.num_workers))


def build_farm_bs(
    sim: Simulator,
    resources: ResourceManager,
    *,
    name: str = "farm",
    worker_work: float,
    initial_degree: int = 1,
    trace: Optional[TraceRecorder] = None,
    network: Optional[Network] = None,
    control_period: float = 10.0,
    worker_setup_time: float = 5.0,
    rate_window: float = 10.0,
    node_predicate: NodePredicate = any_node,
    emitter_node: Optional[Node] = None,
    constants_kwargs: Optional[dict] = None,
    spawn_worker_managers: bool = True,
    on_result: Optional[Callable[..., None]] = None,
    policy: str = "standard",
    telemetry: Optional[Any] = None,
) -> FarmBS:
    """Assemble a task-farm BS (Figure 3 configuration).

    ``worker_work`` is the per-task work in seconds-at-unit-speed (the
    simulated image-filter cost); ``initial_degree`` workers are
    bootstrapped immediately from ``resources``.  With
    ``initial_degree=0`` the manager instead performs model-based initial
    deployment when its contract arrives (§3's "initial parallelism
    degree setup": ``optimal_degree`` workers straight away).
    """
    trace = trace or TraceRecorder()
    emitter = emitter_node or Node(f"{name}-frontend")
    farm = SimFarm(
        sim,
        name=name,
        emitter_node=emitter,
        network=network,
        worker_setup_time=worker_setup_time,
        rate_window=rate_window,
        on_result=on_result,
        telemetry=telemetry,
    )
    abc = FarmABC(farm, resources, node_predicate=node_predicate)
    from .policies import ManagersConstants

    constants = ManagersConstants(**(constants_kwargs or {}))
    manager = FarmManager(
        f"AM_{name}",
        sim,
        abc,
        constants=constants,
        trace=trace,
        control_period=control_period,
        manage_workers=spawn_worker_managers,
        policy=policy,
        worker_work=worker_work,
        telemetry=telemetry,
    )
    if initial_degree > 0:
        abc.bootstrap(initial_degree)
        if spawn_worker_managers:
            manager.spawn_worker_managers()
    component = _make_component(name, manager, abc)
    pattern = FarmSkel(SeqSkel(worker_work), degree=max(1, initial_degree))
    return FarmBS(
        pattern=pattern,
        manager=manager,
        component=component,
        abc=abc,
        farm=farm,
        resources=resources,
    )


def build_map_bs(
    sim: Simulator,
    resources: ResourceManager,
    *,
    name: str = "map",
    initial_degree: int = 1,
    trace: Optional[TraceRecorder] = None,
    network: Optional[Network] = None,
    control_period: float = 10.0,
    worker_setup_time: float = 5.0,
    rate_window: float = 10.0,
    scatter_overhead: float = 0.02,
    gather_overhead: float = 0.02,
    node_predicate: NodePredicate = any_node,
    emitter_node: Optional[Node] = None,
    constants_kwargs: Optional[dict] = None,
    policy: str = "standard",
    on_result: Optional[Callable[..., None]] = None,
) -> FarmBS:
    """Assemble a data-parallel map BS.

    Same manager stack as :func:`build_farm_bs` — the map is the
    scatter/reduce variant of functional replication (§3), so a
    :class:`FarmManager` over a :class:`~repro.gcm.abc_controller.
    FarmABC` drives it unchanged.  Tasks are *collections*: each is
    scattered across all current workers and reduced back to one result.
    """
    from ..sim.map import SimMap

    trace = trace or TraceRecorder()
    emitter = emitter_node or Node(f"{name}-frontend")
    smap = SimMap(
        sim,
        name=name,
        emitter_node=emitter,
        network=network,
        scatter_overhead=scatter_overhead,
        gather_overhead=gather_overhead,
        worker_setup_time=worker_setup_time,
        rate_window=rate_window,
        on_result=on_result,
    )
    abc = FarmABC(smap, resources, node_predicate=node_predicate)  # type: ignore[arg-type]
    from .policies import ManagersConstants

    constants = ManagersConstants(**(constants_kwargs or {}))
    manager = FarmManager(
        f"AM_{name}",
        sim,
        abc,
        constants=constants,
        trace=trace,
        control_period=control_period,
        manage_workers=False,
        policy=policy,
    )
    if initial_degree > 0:
        abc.bootstrap(initial_degree)
    component = _make_component(name, manager, abc)
    # the skeleton algebra models a map as a farm with scatter dispatch
    pattern = FarmSkel(
        SeqSkel(1.0), degree=max(1, initial_degree), dispatch="scatter", collect="reduce"
    )
    return FarmBS(
        pattern=pattern,
        manager=manager,
        component=component,
        abc=abc,
        farm=smap,  # type: ignore[arg-type]
        resources=resources,
    )


@dataclass
class PipelineApp:
    """The Figure 4 application: mechanisms, managers, trace, plumbing."""

    sim: Simulator
    pattern: Skeleton
    trace: TraceRecorder
    # mechanisms
    source: TaskSource
    farm: SimFarm
    consumer_stage: SeqStage
    pipeline: SimPipeline
    resources: ResourceManager
    network: Optional[Network]
    # managers (the paper's names)
    am_a: PipelineManager
    am_p: ProducerManager
    am_f: FarmManager
    am_c: ConsumerManager
    # components
    component: CompositeComponent

    def assign_contract(self, contract: Contract) -> None:
        self.am_a.assign_contract(contract)

    def cores_in_use(self) -> int:
        """Resources used right now: producer + consumer + farm workers.

        The Figure 4 bottom graph: the two sequential stages run on one
        core each; every (active or deploying) farm worker adds one.
        """
        farm_nodes = len(self.am_f.farm_abc.nodes_in_use)
        return 2 + farm_nodes

    @property
    def delivered(self) -> int:
        return self.pipeline.delivered


def build_three_stage_pipeline(
    sim: Simulator,
    resources: ResourceManager,
    *,
    work_model: WorkModel,
    worker_work: float,
    initial_rate: float,
    max_rate: Optional[float] = None,
    total_tasks: Optional[int] = None,
    initial_degree: int = 3,
    producer_work: float = 0.0,
    consumer_work: float = 0.1,
    control_period: float = 10.0,
    worker_setup_time: float = 5.0,
    rate_window: float = 10.0,
    trace: Optional[TraceRecorder] = None,
    network: Optional[Network] = None,
    node_predicate: NodePredicate = any_node,
    spawn_worker_managers: bool = False,
    inc_factor: float = 1.3,
    dec_factor: float = 0.92,
    name: str = "app",
    telemetry: Optional[Any] = None,
) -> PipelineApp:
    """Assemble Figure 4's ``pipeline(seq, farm(seq), seq)`` application.

    The producer is a rate-controllable :class:`TaskSource` (its initial
    rate deliberately set by the caller — Figure 4 starts it too low);
    the filter is a task farm bootstrapped at ``initial_degree``; the
    consumer drains results.  The manager hierarchy AM_A→{AM_P, AM_F,
    AM_C} is fully wired, including end-of-stream notification.
    """
    trace = trace or TraceRecorder()

    producer_node = Node(f"{name}-producer")
    consumer_node = Node(f"{name}-consumer")

    farm = SimFarm(
        sim,
        name=f"{name}.filter",
        emitter_node=Node(f"{name}-frontend"),
        network=network,
        worker_setup_time=worker_setup_time,
        rate_window=rate_window,
        telemetry=telemetry,
    )

    # consumer: drains the farm's output through a forwarder
    consumer_in = Store(sim, name=f"{name}.consumer.in")
    Forwarder(sim, farm.output, consumer_in, name=f"{name}.fwd")
    pipeline = SimPipeline(sim, [farm], name=name)
    consumer_stage = SeqStage(
        sim,
        name=f"{name}.consumer",
        node=consumer_node,
        input_store=consumer_in,
        output_store=None,
        service_work=consumer_work,
        rate_window=rate_window,
        on_done=pipeline.record_delivery,
    )

    # managers (children created before the source so the end-of-stream
    # callback can reach AM_A)
    farm_abc = FarmABC(farm, resources, node_predicate=node_predicate)
    am_f = FarmManager(
        "AM_F",
        sim,
        farm_abc,
        trace=trace,
        control_period=control_period,
        manage_workers=spawn_worker_managers,
        telemetry=telemetry,
    )

    consumer_abc = StageABC(consumer_stage)
    am_c = ConsumerManager(
        "AM_C",
        sim,
        consumer_abc,
        trace=trace,
        control_period=control_period,
        telemetry=telemetry,
    )

    am_a = PipelineManager(
        "AM_A",
        sim,
        trace=trace,
        control_period=control_period,
        inc_factor=inc_factor,
        dec_factor=dec_factor,
        telemetry=telemetry,
    )

    source = TaskSource(
        sim,
        farm.input,
        rate=initial_rate,
        work_model=work_model,
        total=total_tasks,
        max_rate=max_rate,
        name=f"{name}.producer",
        on_end_of_stream=lambda: (
            farm.notify_end_of_stream(),
            am_a.notify_end_of_stream(),
        ),
    )
    producer_abc = ProducerABC(source)
    am_p = ProducerManager(
        "AM_P",
        sim,
        producer_abc,
        trace=trace,
        control_period=control_period,
        telemetry=telemetry,
    )

    am_a.producer = am_p
    am_a.add_child(am_p)
    am_a.add_child(am_f)
    am_a.add_child(am_c)

    if initial_degree > 0:
        farm_abc.bootstrap(initial_degree)
        if spawn_worker_managers:
            am_f.spawn_worker_managers()

    pipeline.stages.insert(0, source)
    pipeline.stages.append(consumer_stage)

    pattern = PipeSkel(
        SeqSkel(producer_work if producer_work > 0 else 0.0, label="producer"),
        FarmSkel(SeqSkel(worker_work), degree=max(1, initial_degree)),
        SeqSkel(consumer_work, label="consumer"),
    )

    # GCM structure: the application is a composite whose membrane hosts
    # AM_A; each stage is a child component with its manager and ABC in
    # its own membrane, and the inter-stage data flow is expressed as
    # bindings created through the composite's BindingController
    # (Figure 2, right).
    component = _make_component(name, am_a, None)
    content: ContentController = component.controller(ContentController.NAME)
    bindings: BindingController = component.controller(BindingController.NAME)

    producer_comp = _make_component(f"{name}.producer", am_p, producer_abc)
    filter_comp = _make_component(f"{name}.filter", am_f, farm_abc)
    consumer_comp = _make_component(f"{name}.consumer", am_c, consumer_abc)

    producer_out = producer_comp.add_client_interface("out")
    filter_in = filter_comp.add_server_interface("in", farm.submit)
    filter_out = filter_comp.add_client_interface("out")
    consumer_in_itf = consumer_comp.add_server_interface("in", consumer_in.put_nowait)

    for child in (producer_comp, filter_comp, consumer_comp):
        content.add(child)
    bindings.bind(producer_out, filter_in)
    bindings.bind(filter_out, consumer_in_itf)
    component.controller(LifecycleController.NAME).start()

    return PipelineApp(
        sim=sim,
        pattern=pattern,
        trace=trace,
        source=source,
        farm=farm,
        consumer_stage=consumer_stage,
        pipeline=pipeline,
        resources=resources,
        network=network,
        am_a=am_a,
        am_p=am_p,
        am_f=am_f,
        am_c=am_c,
        component=component,
    )
