"""Multi-concern coordination: the GM and the two-phase intent protocol.

Section 3.2 analyses what happens when several autonomic managers, each
owning a different concern, act on the same computation.  The paper's
design points, all implemented here:

* **MM structuring** — "multiple (hierarchies of) AMs, each taking care
  of a different concern C_i plus a general super-AM orchestrating the
  multiple AMs".  :class:`GeneralManager` is that super-AM: concern
  managers register with a priority.
* **Boolean concerns get priority** — security is boolean ("data and
  code communication is either secure or it is not.  Therefore […] they
  should be given a priority"): :meth:`GeneralManager.register` defaults
  boolean concerns to a higher priority, and reviews run in priority
  order.
* **Two-phase intent protocol** — "i) AM_perf should express the
  *intent* to add a new node, ii) AM_sec could react by prompting
  securing of communications and iii) AM_perf may then instantiate the
  new secure worker."  :meth:`GeneralManager.execute_intent` runs
  exactly this: plan (reserve) → review (each concern manager may amend
  or veto the :class:`~repro.gcm.abc_controller.PlannedReconfiguration`)
  → commit or abort.
* **Naive mode** (the ablation baseline) — ``mode="naive"`` commits the
  originator's plan immediately and lets other concern managers catch up
  through their own control loops, reproducing the insecure window the
  paper warns about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..gcm.abc_controller import FarmABC, PlannedReconfiguration
from ..obs.telemetry import NOOP, Telemetry
from ..rules.beans import ManagerOperation
from ..sim.trace import TraceRecorder
from .events import Events
from .manager import AutonomicManager, ManagerError

__all__ = [
    "CoordinationMode",
    "ConcernReview",
    "GeneralManager",
    "IntentRecord",
    "review_plan",
]


class CoordinationMode(enum.Enum):
    """How the GM commits multi-concern reconfigurations."""

    TWO_PHASE = "two-phase"
    NAIVE = "naive"


class ConcernReview:
    """Mixin/protocol for managers that can review reconfiguration intents.

    ``review_intent`` may mutate the plan (amendments such as "secure
    this node's bindings") and returns False to veto the whole intent.
    """

    def review_intent(
        self, originator: AutonomicManager, plan: PlannedReconfiguration
    ) -> bool:
        return True


def review_plan(
    originator: Any,
    plan: PlannedReconfiguration,
    reviewers: Any,
    *,
    telemetry: Telemetry = NOOP,
    on_amend: Any = None,
    on_veto: Any = None,
) -> Tuple[bool, int, Tuple[str, ...]]:
    """Phase one of the intent protocol: run every reviewer over ``plan``.

    Shared by the simulated :class:`GeneralManager` and the live
    :class:`~repro.runtime.multiconcern.LiveGeneralManager`, so the
    review semantics — priority order, amendment detection, first veto
    wins — cannot drift between substrates.  ``on_amend(reviewer,
    secured_nodes)`` and ``on_veto(reviewer)`` are optional hooks for
    caller-specific bookkeeping (trace marks, plan abort).

    Returns ``(ok, amendments, reviewer_names)``; ``ok`` is False the
    moment any reviewer vetoes.
    """
    amendments = 0
    names: list = []
    for reviewer in reviewers:
        if reviewer is originator:
            continue
        if not isinstance(reviewer, ConcernReview) and not hasattr(
            reviewer, "review_intent"
        ):
            continue
        names.append(reviewer.name)
        before = dict(plan.secured)
        verdict = reviewer.review_intent(originator, plan)
        telemetry.event(
            "intent.review", reviewer=reviewer.name, verdict=verdict is not False
        )
        if plan.secured != before:
            amendments += 1
            if on_amend is not None:
                on_amend(reviewer, [n for n in plan.secured if plan.secured[n]])
            telemetry.event("intent.amend", reviewer=reviewer.name)
        if verdict is False:
            if on_veto is not None:
                on_veto(reviewer)
            telemetry.event("intent.veto", reviewer=reviewer.name)
            return False, amendments, tuple(names)
    return True, amendments, tuple(names)


@dataclass
class IntentRecord:
    """Audit entry for one intent run through the GM."""

    time: float
    originator: str
    operation: str
    outcome: str  # committed | vetoed | no-plan
    amendments: int = 0
    reviewers: Tuple[str, ...] = ()


class GeneralManager:
    """The super-AM orchestrating per-concern manager hierarchies."""

    #: concerns that are boolean and therefore outrank quantitative ones
    BOOLEAN_CONCERNS = frozenset({"security"})

    def __init__(
        self,
        *,
        mode: CoordinationMode = CoordinationMode.TWO_PHASE,
        trace: Optional[TraceRecorder] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.mode = mode
        self.trace = trace or TraceRecorder()
        self.telemetry = telemetry if telemetry is not None else NOOP
        self._managers: List[Tuple[int, AutonomicManager]] = []
        self.intents: List[IntentRecord] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, manager: AutonomicManager, *, priority: Optional[int] = None
    ) -> None:
        """Attach a concern manager; boolean concerns default to priority 10.

        Registration also installs this GM as the manager's coordinator,
        so its actuators route intents through here.
        """
        if priority is None:
            priority = 10 if manager.concern in self.BOOLEAN_CONCERNS else 0
        self._managers.append((priority, manager))
        self._managers.sort(key=lambda t: -t[0])
        manager.coordinator = self

    @property
    def managers(self) -> List[AutonomicManager]:
        """Registered managers in review (priority) order."""
        return [m for _, m in self._managers]

    def managers_of(self, concern: str) -> List[AutonomicManager]:
        return [m for m in self.managers if m.concern == concern]

    # ------------------------------------------------------------------
    # the intent protocol
    # ------------------------------------------------------------------
    def execute_intent(
        self, originator: AutonomicManager, op: ManagerOperation, data: Any
    ) -> bool:
        """Run one reconfiguration intent through the coordination policy.

        Only ``ADD_EXECUTOR`` on a farm ABC has a plan/commit split; any
        other operation is executed directly (nothing for other concerns
        to interpose on in this substrate).
        """
        abc = originator.abc
        if op is not ManagerOperation.ADD_EXECUTOR or not isinstance(abc, FarmABC):
            return abc.execute(op, data) if abc is not None else False

        tel = self.telemetry
        with tel.span(
            "intent.round",
            actor="GM",
            originator=originator.name,
            operation=op.value,
            mode=self.mode.value,
        ) as round_span:
            count = int(data.get("count", 1)) if isinstance(data, Mapping) else 1
            plan = abc.plan_add_workers(count)
            tel.event("intent.plan", count=count, ok=plan is not None)
            if plan is None:
                round_span.set_attribute("outcome", "no-plan")
                self._record(originator, op, "no-plan")
                return False

            if self.mode is CoordinationMode.NAIVE:
                # Phase-less commit: other concern managers only find out via
                # their own monitoring — the unsafe window of §3.2.
                abc.commit_plan(plan)
                tel.event("intent.commit", reviewers=0)
                round_span.set_attribute("outcome", "committed")
                self._record(originator, op, "committed", reviewers=())
                return True

            def on_amend(reviewer: AutonomicManager, secured_nodes: List[str]) -> None:
                self.trace.mark(
                    originator.sim.now,
                    reviewer.name,
                    Events.INTENT_AMENDED,
                    nodes=secured_nodes,
                )

            def on_veto(reviewer: AutonomicManager) -> None:
                abc.abort_plan(plan)
                self.trace.mark(originator.sim.now, reviewer.name, Events.INTENT_VETOED)

            ok, amendments, reviewers = review_plan(
                originator,
                plan,
                self.managers,
                telemetry=tel,
                on_amend=on_amend,
                on_veto=on_veto,
            )
            if not ok:
                round_span.set_attribute("outcome", "vetoed")
                self._record(
                    originator, op, "vetoed", amendments=amendments,
                    reviewers=reviewers,
                )
                return False
            abc.commit_plan(plan)
            tel.event("intent.commit", reviewers=len(reviewers), amendments=amendments)
            round_span.set_attribute("outcome", "committed")
            self._record(
                originator, op, "committed", amendments=amendments,
                reviewers=reviewers,
            )
            return True

    def _record(
        self,
        originator: AutonomicManager,
        op: ManagerOperation,
        outcome: str,
        *,
        amendments: int = 0,
        reviewers: Tuple[str, ...] = (),
    ) -> None:
        rec = IntentRecord(
            time=originator.sim.now,
            originator=originator.name,
            operation=op.value,
            outcome=outcome,
            amendments=amendments,
            reviewers=reviewers,
        )
        self.intents.append(rec)
        self.trace.mark(
            originator.sim.now,
            "GM",
            Events.INTENT_REVIEW,
            originator=originator.name,
            outcome=outcome,
        )

    # ------------------------------------------------------------------
    # the §3.2 super-contract c̄
    # ------------------------------------------------------------------
    def super_contract(
        self, weights: Optional[List[float]] = None
    ) -> "WeightedCompositeContract":
        """Derive c̄ from the registered managers' contracts.

        "how to derive some kind of 'summary' super-contract c̄ from
        c₁, …, c_h with its own policies such that managing that contract
        leads to fair and efficient management of all the concerns" —
        the linear-combination answer lives in
        :class:`~repro.core.contracts.WeightedCompositeContract`; this
        method assembles it from whatever the concern managers currently
        hold.
        """
        from .contracts import WeightedCompositeContract

        parts = [m.contract for m in self.managers if m.contract is not None]
        if not parts:
            raise ManagerError("no registered manager holds a contract yet")
        return WeightedCompositeContract(parts, weights)

    def combined_monitor(self) -> Dict[str, Any]:
        """Union of every registered manager's last monitor sample.

        Key collisions resolve in priority order (higher-priority
        concerns win), matching the review ordering.
        """
        merged: Dict[str, Any] = {}
        for m in reversed(self.managers):  # low priority first, overwritten
            if m.last_monitor:
                merged.update(m.last_monitor)
        return merged

    def super_contract_score(
        self, weights: Optional[List[float]] = None
    ) -> Optional[float]:
        """c̄'s satisfaction degree against the combined monitor sample."""
        return self.super_contract(weights).score(self.combined_monitor())

    # ------------------------------------------------------------------
    # audit helpers
    # ------------------------------------------------------------------
    def committed_intents(self) -> List[IntentRecord]:
        return [r for r in self.intents if r.outcome == "committed"]

    def vetoed_intents(self) -> List[IntentRecord]:
        return [r for r in self.intents if r.outcome == "vetoed"]
