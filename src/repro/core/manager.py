"""The autonomic manager: MAPE control loop, active/passive roles.

"In the context of this work an autonomic manager is an independent
activity completely and autonomically managing some specific
non-functional concern within an application." (§3)  Managers are
characterised by (i) the *concern* they manage, (ii) the *autonomic
policies* they implement — here, rules in a :class:`~repro.rules.engine.
RuleEngine` — and (iii) their *degree of cooperation* (parent/children
links, and optionally a multi-concern coordinator).

The control loop is the classical monitor → analyse → plan → execute
cycle [16,17], realised as a periodic :meth:`control_step`:

1. **monitor** — sample the ABC (None during reconfiguration blackouts,
   in which case the whole cycle is skipped, reproducing Figure 4's
   sensor-data gap);
2. **analyse** — refresh the working-memory beans and note contract
   events (``contrLow``/``contrHigh``);
3. **plan** — one rule-engine evaluation selects and prioritises the
   fireable rules;
4. **execute** — rule actions fire :class:`ManagerOperation`s back into
   the manager, which executes actuators or raises violations.

**P_rol** (active/passive roles, §3.1): assigning a contract puts a
manager in ACTIVE mode; an unrecoverable violation makes it report to
its parent and drop to PASSIVE, where it keeps monitoring (and keeps
re-reporting a persisting violation) but takes no corrective action
until a new contract arrives.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Mapping, Optional

from ..gcm.abc_controller import AutonomicBehaviourController
from ..obs.telemetry import NOOP, Telemetry
from ..rules.beans import Bean, ManagerOperation
from ..rules.engine import RuleEngine
from ..sim.engine import PeriodicTask, Simulator
from ..sim.trace import TraceRecorder
from .contracts import Contract
from .events import Events, Violation

__all__ = ["ManagerState", "AutonomicManager", "ManagerError"]


class ManagerError(RuntimeError):
    """Raised for invalid manager wiring or usage."""


class ManagerState(enum.Enum):
    """Figure 1 (right): the two roles a BS manager can play."""

    ACTIVE = "active"
    PASSIVE = "passive"


class AutonomicManager:
    """Base autonomic manager; pattern-specific subclasses add policies."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        *,
        concern: str = "performance",
        abc: Optional[AutonomicBehaviourController] = None,
        trace: Optional[TraceRecorder] = None,
        telemetry: Optional[Telemetry] = None,
        control_period: float = 10.0,
        violation_delay: float = 1.0,
        autostart: bool = True,
    ) -> None:
        if control_period <= 0:
            raise ManagerError("control_period must be positive")
        self.name = name
        self.sim = sim
        self.concern = concern
        self.abc = abc
        self.trace = trace or TraceRecorder()
        # Observability is strictly optional: the no-op default makes
        # every tel.* call inert, and the property tests assert that
        # attaching a live Telemetry leaves the event sequence
        # bit-identical.
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.control_period = control_period
        self.violation_delay = violation_delay

        self.engine = RuleEngine(telemetry=self.telemetry, owner=name)
        self.contract: Optional[Contract] = None
        self.state = ManagerState.PASSIVE
        self.parent: Optional["AutonomicManager"] = None
        self.children: List["AutonomicManager"] = []
        self.coordinator: Optional[Any] = None  # multi-concern GM, if any

        self.last_monitor: Optional[Dict[str, Any]] = None
        self.unhandled_violations: List[Violation] = []
        self.violations_raised: List[Violation] = []

        self._loop: Optional[PeriodicTask] = None
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # hierarchy wiring
    # ------------------------------------------------------------------
    def add_child(self, child: "AutonomicManager") -> "AutonomicManager":
        """Attach a child manager (a BS nested inside this one's BS)."""
        if child.parent is not None:
            raise ManagerError(f"{child.name} already has parent {child.parent.name}")
        if child is self:
            raise ManagerError("a manager cannot be its own child")
        child.parent = self
        self.children.append(child)
        return child

    def descendants(self) -> List["AutonomicManager"]:
        """All managers below this one (pre-order)."""
        out: List[AutonomicManager] = []
        for c in self.children:
            out.append(c)
            out.extend(c.descendants())
        return out

    @property
    def is_root(self) -> bool:
        return self.parent is None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic control loop (idempotent)."""
        if self._loop is None or self._loop.cancelled:
            self._loop = self.sim.periodic(
                self.control_period, self.control_step, name=f"{self.name}.loop"
            )

    def stop(self) -> None:
        """Stop the control loop."""
        if self._loop is not None:
            self._loop.cancel()

    # ------------------------------------------------------------------
    # contracts (active role entry point)
    # ------------------------------------------------------------------
    def assign_contract(self, contract: Contract) -> None:
        """Receive a contract from the user or the parent manager."""
        with self.telemetry.span(
            "contract.assign", actor=self.name, contract=contract.describe()
        ):
            self.contract = contract
            self.trace.mark(
                self.sim.now, self.name, Events.NEW_CONTRACT, contract=contract.describe()
            )
            # on_contract may split/propagate to children, whose own
            # contract.assign spans nest under this one: the P_spl
            # propagation tree becomes directly visible in the trace.
            self.on_contract(contract)
            self._set_state(ManagerState.ACTIVE)

    def on_contract(self, contract: Contract) -> None:
        """Hook: derive thresholds, split and propagate to children."""

    def _set_state(self, state: ManagerState) -> None:
        if state is self.state:
            return
        self.state = state
        mark = Events.GO_ACTIVE if state is ManagerState.ACTIVE else Events.GO_PASSIVE
        self.trace.mark(self.sim.now, self.name, mark)

    @property
    def active(self) -> bool:
        return self.state is ManagerState.ACTIVE

    # ------------------------------------------------------------------
    # MAPE loop
    # ------------------------------------------------------------------
    def control_step(self) -> None:
        """One control-loop tick: monitor, analyse, plan, execute.

        With telemetry attached, every phase of the MAPE cycle becomes a
        child span of one ``mape.cycle`` span, and the cycle's
        instrumentation-side cost feeds the control-loop latency
        histogram.  The rule evaluation is split into its
        :meth:`~repro.rules.engine.RuleEngine.agenda` (plan) and
        :meth:`~repro.rules.engine.RuleEngine.fire` (execute) halves —
        behaviourally identical to ``evaluate()`` — so planning and
        execution are separately attributable.
        """
        tel = self.telemetry
        with tel.span("mape.cycle", actor=self.name) as cycle:
            with tel.span("mape.monitor", actor=self.name):
                data = self.monitor()
            if data is None:
                # reconfiguration blackout: no sensor data this tick
                cycle.set_attribute("blackout", True)
                if tel.enabled:
                    tel.metrics.counter(
                        "repro_mape_blackout_ticks_total",
                        "control ticks skipped during reconfiguration blackouts",
                    ).labels(manager=self.name).inc()
                return
            self.last_monitor = data
            with tel.span("mape.analyse", actor=self.name):
                self.observe(data)
            if self.state is ManagerState.ACTIVE:
                with tel.span("mape.plan", actor=self.name) as plan:
                    agenda = self.engine.agenda()
                    if tel.enabled:
                        plan.set_attribute(
                            "matched",
                            [(a.rule.name, a.rule.salience) for a in agenda],
                        )
                with tel.span("mape.execute", actor=self.name) as execute:
                    fired = self.engine.fire(agenda)
                    if tel.enabled:
                        execute.set_attribute("fired", fired)
            else:
                with tel.span("mape.execute", actor=self.name, mode="passive"):
                    self.passive_step(data)
        if tel.enabled:
            tel.metrics.histogram(
                "repro_control_loop_latency_seconds",
                "wall-clock cost of one MAPE control tick",
            ).labels(manager=self.name).observe(cycle.perf_elapsed or 0.0)
            tel.metrics.counter(
                "repro_mape_ticks_total", "MAPE control ticks executed"
            ).labels(manager=self.name).inc()

    def monitor(self) -> Optional[Dict[str, Any]]:
        """Sample the ABC (managers without an ABC see an empty sample)."""
        if self.abc is None:
            return {}
        return self.abc.monitor()

    def observe(self, data: Mapping[str, Any]) -> None:
        """Hook: refresh working-memory beans, record trace samples."""

    def passive_step(self, data: Mapping[str, Any]) -> None:
        """Hook for PASSIVE mode: monitor-only behaviour.

        Default: if the contract violation persists, re-report it so the
        parent keeps seeing pressure (the repeated raiseViol marks of
        Figure 4's first phase come from this).
        """

    # ------------------------------------------------------------------
    # operations fired by rule actions
    # ------------------------------------------------------------------
    def make_bean(self, bean: Bean) -> Bean:
        """Bind a bean's operation sink to this manager."""
        return bean.bind_sink(self._operation_sink)

    def _operation_sink(self, op: ManagerOperation, data: Any) -> None:
        self.on_operation(op, data)

    def on_operation(self, op: ManagerOperation, data: Any) -> None:
        """Hook: execute one operation ordered by a rule action.

        Default behaviour: RAISE_VIOLATION becomes a violation report;
        anything else goes straight to the ABC, and an ABC refusal (no
        resources, nothing to remove, …) escalates as a violation —
        "If corrective action is required and not possible, a contract
        violation is reported to the parent" (§3.1).
        """
        if op is ManagerOperation.RAISE_VIOLATION:
            self.raise_violation(str(data))
            return
        if self.abc is None:
            raise ManagerError(f"{self.name}: no ABC to execute {op}")
        ok = self.abc.execute(op, data)
        if not ok:
            from .events import ViolationKind

            self.raise_violation(ViolationKind.NO_LOCAL_PLAN, operation=op.value)

    # ------------------------------------------------------------------
    # violations (passive role entry point)
    # ------------------------------------------------------------------
    def raise_violation(self, kind: str, severity: str = "fatal", **detail: Any) -> Violation:
        """Report a violation to the parent.

        A *fatal* violation also drops this manager to PASSIVE mode when a
        parent exists to eventually re-contract it (§3.1: "the manager
        remains in passive mode until it receives a new contract").  A
        *root* manager's violations go to the user, who is not part of the
        control loop, so the root stays active and keeps retrying — going
        permanently passive would deadlock the whole hierarchy.  Warnings
        (e.g. ``tooMuchTasks``, §4.2) never change the state.
        """
        violation = Violation(kind, self.name, self.sim.now, detail, severity)
        self.violations_raised.append(violation)
        self.trace.mark(self.sim.now, self.name, Events.RAISE_VIOL, kind=kind)
        if severity == "fatal" and self.parent is not None:
            self._set_state(ManagerState.PASSIVE)
        if self.parent is not None:
            # Violation reports travel over the network: the parent sees
            # them "a little bit after" (Fig. 4) the child raised them.
            # The in-flight interval is a detached span closed at
            # delivery, so the audit shows each propagation hop.
            span = self.telemetry.start_span(
                "violation.propagate",
                actor=self.name,
                kind=kind,
                severity=severity,
                target=self.parent.name,
            )
            self.sim.schedule(
                self.violation_delay, self._deliver_violation, self.parent, violation, span
            )
        else:
            self.unhandled_violations.append(violation)
        return violation

    def _deliver_violation(
        self, parent: "AutonomicManager", violation: Violation, span: Any
    ) -> None:
        """Scheduled hand-off of a violation report to the parent."""
        self.telemetry.end_span(span)
        parent.child_violation(self, violation)

    def child_violation(self, child: "AutonomicManager", violation: Violation) -> None:
        """Hook: a child reported a violation.  Default: record only."""
        self.unhandled_violations.append(violation)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def contract_satisfied(self) -> Optional[bool]:
        """Judge the current contract against the last monitor sample."""
        if self.contract is None or self.last_monitor is None:
            return None
        return self.contract.check(self.last_monitor)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} {self.state.value}>"
