"""Event vocabulary and violation records of the manager hierarchy.

The names are exactly those plotted in Figures 3 and 4 of the paper
(``contrLow``, ``notEnough``, ``raiseViol``, ``incRate``, ``decRate``,
``addWorker``, ``rebalance``, ``endStream`` …), so a regenerated trace
can be compared event-for-event with the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Events", "ViolationKind", "Violation"]


class Events:
    """Canonical event-mark names used in traces."""

    # farm manager observations (Fig. 4, second graph)
    CONTR_LOW = "contrLow"
    CONTR_HIGH = "contrHigh"
    NOT_ENOUGH = "notEnough"
    TOO_MUCH = "tooMuch"
    RAISE_VIOL = "raiseViol"
    ADD_WORKER = "addWorker"
    REMOVE_WORKER = "removeWorker"
    MIGRATE_WORKER = "migrateWorker"
    REBALANCE = "rebalance"
    # application manager actions (Fig. 4, first graph)
    INC_RATE = "incRate"
    DEC_RATE = "decRate"
    END_STREAM = "endStream"
    NEW_CONTRACT = "newContract"
    # manager mode transitions (Fig. 1, right)
    GO_PASSIVE = "goPassive"
    GO_ACTIVE = "goActive"
    # stage-to-farm transformation (§4.2, the paper's stated future work)
    FARM_STAGE = "farmStage"
    # security manager actions (§3.2)
    SECURE_WORKER = "secureWorker"
    INTENT_REVIEW = "intentReview"
    INTENT_AMENDED = "intentAmended"
    INTENT_VETOED = "intentVetoed"


class ViolationKind:
    """Reasons a manager reports a violation to its parent.

    ``NOT_ENOUGH_TASKS`` / ``TOO_MUCH_TASKS`` are the paper's
    ``notEnoughTasks_VIOL`` / ``tooMuchTasks_VIOL`` constants (Fig. 5);
    ``NO_LOCAL_PLAN`` covers "corrective action is required and not
    possible" (§3.1) — e.g. resource recruitment failed.
    """

    NOT_ENOUGH_TASKS = "notEnoughTasks"
    TOO_MUCH_TASKS = "tooMuchTasks"
    NO_LOCAL_PLAN = "noLocalPlan"
    CONTRACT_UNSATISFIABLE = "contractUnsatisfiable"
    SECURITY_BREACH = "securityBreach"


@dataclass(frozen=True)
class Violation:
    """A contract-violation report travelling child → parent.

    ``severity`` distinguishes the paper's two violation flavours (§4.2):
    a *fatal* violation means the local manager has no plan and enters
    passive mode; a *warning* (like ``tooMuchTasks`` — "strictly
    speaking, it is useless to enforce the contract") is reported for
    the parent's benefit while the reporter stays active.
    """

    kind: str
    source: str
    time: float
    detail: Mapping[str, Any] = field(default_factory=dict)
    severity: str = "fatal"

    @property
    def is_warning(self) -> bool:
        return self.severity == "warning"

    def __str__(self) -> str:
        return f"Violation({self.kind} from {self.source} @ {self.time:.2f})"
