"""Manager-hierarchy utilities: propagation, inspection, invariants.

The hierarchical management algorithm of §3.1 in one place:

1. the user provides the top-level contract;
2. the contract is split into sub-contracts, propagated to children, and
   the manager enters active mode (this recursion is triggered by each
   manager's ``on_contract`` hook — :func:`propagate_contract` is the
   explicit entry point);
3. active managers run their control loops;
4. a manager that cannot recover locally reports a violation to its
   parent and goes passive until re-contracted.

The inspection helpers feed tests and reports: :func:`hierarchy_states`
snapshots every manager's role, :func:`check_hierarchy` validates the
structural invariants (single root, acyclic, consistent parent/child
links).
"""

from __future__ import annotations

from typing import Dict, List

from .contracts import Contract
from .manager import AutonomicManager, ManagerError, ManagerState

__all__ = [
    "propagate_contract",
    "hierarchy_states",
    "check_hierarchy",
    "managers_preorder",
    "passive_managers",
    "format_hierarchy",
]


def propagate_contract(root: AutonomicManager, contract: Contract) -> None:
    """Step 2 of the §3.1 algorithm: assign the SLA to the root manager.

    Splitting/propagation to descendants happens inside each manager's
    ``on_contract`` hook, so after this call every manager in the tree
    holds its (sub-)contract and is in active mode.
    """
    root.assign_contract(contract)


def managers_preorder(root: AutonomicManager) -> List[AutonomicManager]:
    """Root plus all descendants, pre-order."""
    return [root] + root.descendants()


def hierarchy_states(root: AutonomicManager) -> Dict[str, str]:
    """Map of manager name → role (active/passive) for the whole tree."""
    return {m.name: m.state.value for m in managers_preorder(root)}


def passive_managers(root: AutonomicManager) -> List[AutonomicManager]:
    """Managers currently in passive mode anywhere in the tree."""
    return [m for m in managers_preorder(root) if m.state is ManagerState.PASSIVE]


def check_hierarchy(root: AutonomicManager) -> None:
    """Validate structural invariants; raises :class:`ManagerError`.

    * the root has no parent;
    * every child's ``parent`` points back to its actual parent;
    * no manager appears twice (the hierarchy is a tree, not a DAG);
    * no manager is its own ancestor.
    """
    if root.parent is not None:
        raise ManagerError(f"root {root.name} has a parent ({root.parent.name})")
    seen: set = set()

    def visit(m: AutonomicManager) -> None:
        if id(m) in seen:
            raise ManagerError(f"manager {m.name} appears twice in the hierarchy")
        seen.add(id(m))
        for c in m.children:
            if c.parent is not m:
                raise ManagerError(
                    f"child {c.name} of {m.name} has parent "
                    f"{c.parent.name if c.parent else None}"
                )
            visit(c)

    visit(root)


def format_hierarchy(root: AutonomicManager, indent: int = 0) -> str:
    """ASCII rendering of the manager tree with roles and contracts."""
    pad = "  " * indent
    contract = root.contract.describe() if root.contract else "(no contract)"
    line = f"{pad}{root.name} [{root.state.value}] — {contract}\n"
    return line + "".join(format_hierarchy(c, indent + 1) for c in root.children)
