"""Manager policies: the paper's rule files, transliterated.

:func:`farm_rules` is a one-to-one port of Figure 5 (the ``AM_F`` JBoss
rule file): ``CheckInterArrivalRateLow``, ``CheckInterArrivalRateHigh``,
``CheckRateLow``, ``CheckRateHigh`` and ``CheckLoadBalance``, with the
same preconditions, the same ``setData``/``fireOperation`` action shape
and the same constants table (:class:`ManagersConstants`).

:func:`pipeline_rules` encodes the application-manager behaviour narrated
in §4.2: respond to a farm's ``notEnoughTasks`` violation with an
``incRate`` contract to the producer, to ``tooMuchTasks`` with a
``decRate``, stop issuing rate increases once the stream has ended, and
escalate anything locally unhandleable to the parent (or the user).

Thresholds live in a mutable constants object captured by the rule
closures, so re-assigning a contract re-tunes the rules in place —
re-deploying rule sets at run time is exactly what the JBoss engine
avoided in the original implementation too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..rules.beans import (
    ArrivalRateBean,
    DepartureRateBean,
    EndOfStreamBean,
    LatencyBean,
    ManagerOperation,
    NumWorkerBean,
    QueueVarianceBean,
    ViolationBean,
)
from ..rules.dsl import rule, value_eq
from ..rules.engine import Rule
from .events import ViolationKind

if TYPE_CHECKING:  # pragma: no cover
    from .skeleton_manager import PipelineManager

__all__ = [
    "ManagersConstants",
    "farm_rules",
    "migration_farm_rules",
    "latency_rule",
    "pipeline_rules",
]


class ManagersConstants:
    """The tuning constants referenced by Figure 5's rule file.

    ``FARM_LOW_PERF_LEVEL``/``FARM_HIGH_PERF_LEVEL`` come from the
    contract (the 0.3/0.7 stripe in Figure 4); the rest are deployment
    parameters.  Instances are mutable on purpose: the farm manager
    rewrites the levels when a new contract arrives.
    """

    def __init__(
        self,
        *,
        low: float = 0.0,
        high: float = float("inf"),
        max_workers: int = 16,
        min_workers: int = 1,
        add_burst: int = 2,
        max_unbalance: float = 4.0,
    ) -> None:
        self.FARM_LOW_PERF_LEVEL = low
        self.FARM_HIGH_PERF_LEVEL = high
        self.FARM_MAX_NUM_WORKERS = max_workers
        self.FARM_MIN_NUM_WORKERS = min_workers
        # Figure 4 adds workers two at a time; this is that batch size
        # (the FARM_ADD_WORKERS payload of CheckRateLow's setData).
        self.FARM_ADD_WORKERS = add_burst
        self.FARM_MAX_UNBALANCE = max_unbalance
        # Latency SLA bound (inf = no latency contract); not in Figure 5 —
        # an extension rule (CheckLatencyHigh) enforces it.
        self.FARM_MAX_LATENCY = float("inf")

    # violation payloads (the paper's ManagersConstants.*_VIOL)
    notEnoughTasks_VIOL = ViolationKind.NOT_ENOUGH_TASKS
    tooMuchTasks_VIOL = ViolationKind.TOO_MUCH_TASKS


def farm_rules(consts: ManagersConstants) -> List[Rule]:
    """Figure 5, rule for rule.

    The conditions read the constants through the ``consts`` closure so
    threshold updates apply without rebuilding the rules.
    """

    def check_inter_arrival_rate_low(act):
        arrival = act["arrivalBean"]
        arrival.set_data(consts.notEnoughTasks_VIOL)
        arrival.fire_operation(ManagerOperation.RAISE_VIOLATION)

    def check_inter_arrival_rate_high(act):
        arrival = act["arrivalBean"]
        arrival.set_data(consts.tooMuchTasks_VIOL)
        arrival.fire_operation(ManagerOperation.RAISE_VIOLATION)

    def check_rate_low(act):
        departure = act["departureBean"]
        departure.set_data({"count": consts.FARM_ADD_WORKERS})
        departure.fire_operation(ManagerOperation.ADD_EXECUTOR)
        departure.fire_operation(ManagerOperation.BALANCE_LOAD)

    def check_rate_high(act):
        departure = act["departureBean"]
        departure.fire_operation(ManagerOperation.REMOVE_EXECUTOR)
        departure.fire_operation(ManagerOperation.BALANCE_LOAD)

    def check_load_balance(act):
        act["varianceBean"].fire_operation(ManagerOperation.BALANCE_LOAD)

    return [
        rule("CheckInterArrivalRateLow")
        .doc("input pressure below contract: raise notEnoughTasks violation")
        .salience(20)
        .when(
            ArrivalRateBean,
            lambda b: b.value < consts.FARM_LOW_PERF_LEVEL,
            bind="arrivalBean",
        )
        .then(check_inter_arrival_rate_low),
        rule("CheckInterArrivalRateHigh")
        .doc("input pressure above contract: raise tooMuchTasks warning")
        .salience(20)
        .when(
            ArrivalRateBean,
            lambda b: b.value > consts.FARM_HIGH_PERF_LEVEL,
            bind="arrivalBean",
        )
        .then(check_inter_arrival_rate_high),
        rule("CheckRateLow")
        .doc("enough input but low output: add workers and rebalance")
        .salience(10)
        .when(
            DepartureRateBean,
            lambda b: b.value < consts.FARM_LOW_PERF_LEVEL,
            bind="departureBean",
        )
        .when(
            ArrivalRateBean,
            lambda b: b.value >= consts.FARM_LOW_PERF_LEVEL,
            bind="arrivalBean",
        )
        .when(
            NumWorkerBean,
            lambda b: b.value <= consts.FARM_MAX_NUM_WORKERS,
            bind="parDegree",
        )
        .then(check_rate_low),
        rule("CheckRateHigh")
        .doc("output above contract: drop a worker and rebalance")
        .salience(10)
        .when(
            DepartureRateBean,
            lambda b: b.value > consts.FARM_HIGH_PERF_LEVEL,
            bind="departureBean",
        )
        .when(
            NumWorkerBean,
            lambda b: b.value > consts.FARM_MIN_NUM_WORKERS,
            bind="parDegree",
        )
        .then(check_rate_high),
        rule("CheckLoadBalance")
        .doc("uneven worker queues: redistribute queued tasks")
        .salience(5)
        .when(
            QueueVarianceBean,
            lambda b: b.value > consts.FARM_MAX_UNBALANCE,
            bind="varianceBean",
        )
        .then(check_load_balance),
    ]


def latency_rule(consts: ManagersConstants) -> Rule:
    """Extension beyond Figure 5: enforce a mean-latency SLA.

    When queueing delay pushes the windowed mean latency past
    ``FARM_MAX_LATENCY`` (set from a
    :class:`~repro.core.contracts.MaxLatencyContract`), grow the farm —
    more workers drain the queues and latency falls back toward the pure
    service time.  With the default bound of +inf the rule never fires,
    so installing it alongside the Figure 5 set is free.
    """

    def check_latency_high(act):
        latency = act["latencyBean"]
        latency.set_data({"count": consts.FARM_ADD_WORKERS})
        latency.fire_operation(ManagerOperation.ADD_EXECUTOR)
        latency.fire_operation(ManagerOperation.BALANCE_LOAD)

    return (
        rule("CheckLatencyHigh")
        .doc("mean latency above the SLA bound: add workers to drain queues")
        .salience(8)
        .when(
            LatencyBean,
            lambda b: b.value > consts.FARM_MAX_LATENCY,
            bind="latencyBean",
        )
        .when(
            NumWorkerBean,
            lambda b: b.value <= consts.FARM_MAX_NUM_WORKERS,
            bind="parDegree",
        )
        .then(check_latency_high)
    )


def migration_farm_rules(consts: ManagersConstants) -> List[Rule]:
    """Figure 5's rule set with migration-first recovery.

    §3 lists "migration of poorly performing activities to faster
    execution resources" among the performance AM's policies.  This
    variant replaces ``CheckRateLow``'s action with a ``MIGRATE``
    operation: the manager first tries to *move* its slowest worker to a
    faster node (no extra resources consumed), and only falls back to
    ``ADD_EXECUTOR`` if no sufficiently faster node exists — see
    :meth:`repro.core.skeleton_manager.FarmManager.on_operation`.
    """
    rules = farm_rules(consts)

    def migrate_or_grow(act):
        departure = act["departureBean"]
        departure.set_data({"count": consts.FARM_ADD_WORKERS})
        departure.fire_operation(ManagerOperation.MIGRATE)
        departure.fire_operation(ManagerOperation.BALANCE_LOAD)

    out: List[Rule] = []
    for r in rules:
        if r.name == "CheckRateLow":
            out.append(
                Rule(
                    name=r.name,
                    conditions=r.conditions,
                    action=migrate_or_grow,
                    salience=r.salience,
                    doc="low output: migrate the slowest worker, or grow",
                )
            )
        else:
            out.append(r)
    return out


def pipeline_rules(manager: "PipelineManager") -> List[Rule]:
    """Application-manager (AM_A) policies for the Figure 4 pipeline.

    The violation beans are inserted by :meth:`AutonomicManager.
    child_violation`; one bean is consumed per rule firing.
    """

    def _is_violation(kind: str):
        return lambda b: b.value.kind == kind

    def respond_not_enough(act):
        violation = act["viol"].value
        act.memory.retract(act["viol"])
        manager.handle_not_enough(violation)

    def ack_not_enough_after_end(act):
        violation = act["viol"].value
        act.memory.retract(act["viol"])
        manager.acknowledge_violation(violation)

    def respond_too_much(act):
        violation = act["viol"].value
        act.memory.retract(act["viol"])
        manager.handle_too_much(violation)

    def escalate(act):
        violation = act["viol"].value
        act.memory.retract(act["viol"])
        manager.escalate(violation)

    return [
        rule("RespondNotEnough")
        .doc("farm starves and the stream is live: raise producer rate")
        .salience(20)
        .when(
            ViolationBean,
            _is_violation(ViolationKind.NOT_ENOUGH_TASKS),
            bind="viol",
        )
        .when_not(EndOfStreamBean, value_eq(True))
        .then(respond_not_enough),
        rule("AckNotEnoughAfterEndStream")
        .doc(
            "stream ended: notEnough persists but no significant action "
            "remains; just re-activate the reporter"
        )
        .salience(20)
        .when(
            ViolationBean,
            _is_violation(ViolationKind.NOT_ENOUGH_TASKS),
            bind="viol",
        )
        .when(EndOfStreamBean, value_eq(True))
        .then(ack_not_enough_after_end),
        rule("RespondTooMuch")
        .doc("farm flooded: slightly decrease producer rate")
        .salience(15)
        .when(
            ViolationBean,
            _is_violation(ViolationKind.TOO_MUCH_TASKS),
            bind="viol",
        )
        .then(respond_too_much),
        rule("EscalateNoLocalPlan")
        .doc("child out of local plans: pass the violation upwards")
        .salience(10)
        .when(
            ViolationBean,
            _is_violation(ViolationKind.NO_LOCAL_PLAN),
            bind="viol",
        )
        .then(escalate),
        rule("EscalateUnsatisfiable")
        .doc("child cannot ever satisfy its contract: pass upwards")
        .salience(10)
        .when(
            ViolationBean,
            _is_violation(ViolationKind.CONTRACT_UNSATISFIABLE),
            bind="viol",
        )
        .then(escalate),
    ]
