"""The paper's primary contribution: behavioural skeletons + autonomic managers.

Public surface:

* contracts & P_spl splitting — :mod:`~.contracts`
* the manager base (MAPE loop, active/passive roles) — :mod:`~.manager`
* Figure 5's rules and the AM_A policy set — :mod:`~.policies`
* pattern-specific managers (AM_A/AM_P/AM_F/AM_C/AM_W) —
  :mod:`~.skeleton_manager`
* BS assembly (⟨pattern, manager⟩ + GCM component) — :mod:`~.behavioural`
* hierarchy utilities — :mod:`~.hierarchy`
* multi-concern GM and the two-phase intent protocol —
  :mod:`~.multiconcern`
"""

from .behavioural import (
    BehaviouralSkeleton,
    FarmBS,
    PipelineApp,
    build_farm_bs,
    build_map_bs,
    build_three_stage_pipeline,
)
from .adaptation import install_stage_promotion, promote_stage_to_farm
from .contracts import (
    BestEffortContract,
    CompositeContract,
    Contract,
    ContractError,
    MaxLatencyContract,
    MinThroughputContract,
    ParallelismDegreeContract,
    RateContract,
    SecurityContract,
    ThroughputRangeContract,
    WeightedCompositeContract,
    derive_super_contract,
    split_contract,
)
from .events import Events, Violation, ViolationKind
from .hierarchy import (
    check_hierarchy,
    format_hierarchy,
    hierarchy_states,
    managers_preorder,
    passive_managers,
    propagate_contract,
)
from .manager import AutonomicManager, ManagerError, ManagerState
from .multiconcern import (
    ConcernReview,
    CoordinationMode,
    GeneralManager,
    IntentRecord,
)
from .policies import ManagersConstants, farm_rules, pipeline_rules
from .skeleton_manager import (
    ConsumerManager,
    FarmManager,
    PipelineManager,
    ProducerManager,
    WorkerManager,
)

__all__ = [
    "Contract",
    "ThroughputRangeContract",
    "MinThroughputContract",
    "MaxLatencyContract",
    "BestEffortContract",
    "RateContract",
    "ParallelismDegreeContract",
    "SecurityContract",
    "CompositeContract",
    "WeightedCompositeContract",
    "derive_super_contract",
    "split_contract",
    "ContractError",
    "promote_stage_to_farm",
    "install_stage_promotion",
    "Events",
    "Violation",
    "ViolationKind",
    "AutonomicManager",
    "ManagerState",
    "ManagerError",
    "ManagersConstants",
    "farm_rules",
    "pipeline_rules",
    "FarmManager",
    "PipelineManager",
    "ProducerManager",
    "ConsumerManager",
    "WorkerManager",
    "BehaviouralSkeleton",
    "FarmBS",
    "PipelineApp",
    "build_farm_bs",
    "build_map_bs",
    "build_three_stage_pipeline",
    "propagate_contract",
    "hierarchy_states",
    "check_hierarchy",
    "managers_preorder",
    "passive_managers",
    "format_hierarchy",
    "GeneralManager",
    "CoordinationMode",
    "ConcernReview",
    "IntentRecord",
]
