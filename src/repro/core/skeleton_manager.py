"""Pattern-specific autonomic managers (the AM_A / AM_P / AM_F / AM_C set).

Figure 4's application uses four managers: the pipeline (application)
manager ``AM_A``, the producer manager ``AM_P``, the farm manager
``AM_F`` and the consumer manager ``AM_C``; the farm additionally gives
each worker manager ``AM_Wi`` a best-effort contract.  This module
implements each of them on top of :class:`~repro.core.manager.
AutonomicManager`:

* :class:`FarmManager` — runs Figure 5's rules against the farm ABC;
  derives the rule thresholds from its contract; adds workers two at a
  time (the paper's batch); raises ``notEnoughTasks`` (fatal → passive)
  and ``tooMuchTasks`` (warning) violations; supports the multi-concern
  coordinator for two-phase worker addition.
* :class:`PipelineManager` — forwards its throughput contract to every
  stage (P_spl for pipelines), converts children's violations into
  ``incRate``/``decRate`` contracts for the producer, acknowledges
  violations after end-of-stream, escalates what it cannot handle.
* :class:`ProducerManager` — obeys :class:`RateContract`s through the
  producer ABC; reports unsatisfiable demands.
* :class:`ConsumerManager` / :class:`WorkerManager` — monitoring-only
  managers holding best-effort contracts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..gcm.abc_controller import FarmABC, ProducerABC, StageABC
from ..rules.beans import (
    ArrivalRateBean,
    DepartureRateBean,
    EndOfStreamBean,
    LatencyBean,
    ManagerOperation,
    NumWorkerBean,
    QueueVarianceBean,
    UtilizationBean,
    ViolationBean,
)
from ..sim.engine import Simulator
from ..sim.farm import FarmWorker
from .contracts import (
    BestEffortContract,
    CompositeContract,
    Contract,
    MaxLatencyContract,
    MinThroughputContract,
    RateContract,
    ThroughputRangeContract,
)
from .events import Events, Violation, ViolationKind
from .manager import AutonomicManager, ManagerError, ManagerState
from .policies import (
    ManagersConstants,
    farm_rules,
    latency_rule,
    migration_farm_rules,
    pipeline_rules,
)

__all__ = [
    "FarmManager",
    "PipelineManager",
    "ProducerManager",
    "ConsumerManager",
    "WorkerManager",
]


class FarmManager(AutonomicManager):
    """AM_F: autonomic manager of a task-farm behavioural skeleton."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        abc: FarmABC,
        *,
        constants: Optional[ManagersConstants] = None,
        manage_workers: bool = True,
        policy: str = "standard",
        worker_work: Optional[float] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, sim, abc=abc, **kwargs)
        self.constants = constants or ManagersConstants()
        if policy == "standard":
            self.engine.add_rules(farm_rules(self.constants))
        elif policy == "migration-first":
            self.engine.add_rules(migration_farm_rules(self.constants))
        else:
            raise ManagerError(f"unknown farm policy {policy!r}")
        # latency SLA enforcement: inert until a MaxLatencyContract sets
        # FARM_MAX_LATENCY below +inf
        self.engine.add_rule(latency_rule(self.constants))
        self.policy = policy
        self.farm_abc = abc
        self.manage_workers = manage_workers
        # per-task work estimate enabling model-based initial deployment
        # (§3's first listed policy: "initial parallelism degree setup")
        self.worker_work = worker_work

    # -- contract handling ---------------------------------------------
    def on_contract(self, contract: Contract) -> None:
        """Derive the rule thresholds from the contract and hand the
        worker managers their best-effort sub-contracts (§4.2).

        Composite contracts are interpreted part by part, so the classic
        "throughput in range AND mean latency below L" SLA tunes both the
        Figure 5 thresholds and the latency-extension rule.
        """
        parts = contract.parts if isinstance(contract, CompositeContract) else [contract]
        for part in parts:
            if isinstance(part, ThroughputRangeContract):
                self.constants.FARM_LOW_PERF_LEVEL = part.low
                self.constants.FARM_HIGH_PERF_LEVEL = part.high
            elif isinstance(part, MinThroughputContract):
                self.constants.FARM_LOW_PERF_LEVEL = part.target
                self.constants.FARM_HIGH_PERF_LEVEL = float("inf")
            elif isinstance(part, MaxLatencyContract):
                self.constants.FARM_MAX_LATENCY = part.limit
            elif isinstance(part, BestEffortContract):
                self.constants.FARM_LOW_PERF_LEVEL = 0.0
                self.constants.FARM_HIGH_PERF_LEVEL = float("inf")
            else:
                raise ManagerError(
                    f"{self.name}: farm manager cannot interpret {type(part).__name__}"
                )
        self._initial_deployment()
        for child in self.children:
            child.assign_contract(BestEffortContract())

    def _initial_deployment(self) -> None:
        """Model-based initial parallelism degree (§3, policy #1).

        "the parallelism degree of computations implemented using a
        functional replication BS can be initially set to some 'optimal'
        value and then adapted" — if the farm is still empty when the
        contract arrives and we know the per-task work, deploy
        ``optimal_degree`` workers up front instead of ramping from one.
        """
        if self.worker_work is None or self.farm_abc.farm.workers:
            return
        target = self.constants.FARM_LOW_PERF_LEVEL
        if target <= 0 or target == float("inf"):
            return
        from ..skeletons.ast import Seq
        from ..skeletons.cost import optimal_degree

        desired = optimal_degree(Seq(self.worker_work), target)
        degree = min(desired, self.constants.FARM_MAX_NUM_WORKERS)
        plan = self.farm_abc.plan_add_workers(degree)
        if plan is None:
            # not enough resources for the model's answer: deploy what the
            # pool has and tell the parent/user the contract is out of reach
            available = len(self.farm_abc.resources.available(self.farm_abc.node_predicate))
            if available > 0:
                plan = self.farm_abc.plan_add_workers(available)
        if plan is None:
            self.raise_violation(
                ViolationKind.NO_LOCAL_PLAN, operation="bootstrap", desired=desired
            )
            return
        deployed = len(plan.nodes) // self.farm_abc.nodes_per_executor
        self.farm_abc.commit_plan(plan)
        self.trace.mark(
            self.sim.now, self.name, Events.ADD_WORKER, count=deployed, initial=True
        )
        if deployed < desired:
            self.raise_violation(
                ViolationKind.NO_LOCAL_PLAN,
                operation="bootstrap",
                desired=desired,
                deployed=deployed,
            )
        if self.manage_workers:
            self.spawn_worker_managers()

    # -- monitoring ------------------------------------------------------
    def observe(self, data: Mapping[str, Any]) -> None:
        mem = self.engine.memory
        mem.replace(self.make_bean(ArrivalRateBean(data["arrival_rate"])))
        mem.replace(self.make_bean(DepartureRateBean(data["departure_rate"])))
        mem.replace(self.make_bean(NumWorkerBean(data["num_workers"])))
        mem.replace(self.make_bean(QueueVarianceBean(data["queue_variance"])))
        mem.replace(self.make_bean(LatencyBean(data.get("mean_latency", 0.0))))
        mem.replace(self.make_bean(EndOfStreamBean(data.get("end_of_stream", False))))

        now = self.sim.now
        self.trace.sample(f"{self.name}.arrival_rate", now, data["arrival_rate"])
        self.trace.sample(f"{self.name}.departure_rate", now, data["departure_rate"])
        self.trace.sample(f"{self.name}.num_workers", now, data["num_workers"])

        tel = self.telemetry
        if tel.enabled:
            # The metrics registry is the shared sink for the window/EWMA
            # rate estimators' outputs — sim and live runtimes publish the
            # same gauge names.
            m = tel.metrics
            labels = {"manager": self.name}
            m.gauge("repro_farm_arrival_rate", "task arrival rate (tasks/s)").labels(
                **labels
            ).set(data["arrival_rate"])
            m.gauge(
                "repro_farm_departure_rate", "task departure rate (tasks/s)"
            ).labels(**labels).set(data["departure_rate"])
            m.gauge("repro_farm_workers", "active parallelism degree").labels(
                **labels
            ).set(data["num_workers"])
            m.gauge(
                "repro_farm_queue_variance", "population variance of queue lengths"
            ).labels(**labels).set(data["queue_variance"])
            m.histogram(
                "repro_farm_queue_variance_ticks",
                "queue variance observed per control tick",
                buckets=(0.25, 1.0, 4.0, 9.0, 16.0, 25.0, 100.0),
            ).labels(**labels).observe(data["queue_variance"])

        low = self.constants.FARM_LOW_PERF_LEVEL
        high = self.constants.FARM_HIGH_PERF_LEVEL
        if data["departure_rate"] < low:
            self.trace.mark(now, self.name, Events.CONTR_LOW)
        elif data["departure_rate"] > high:
            self.trace.mark(now, self.name, Events.CONTR_HIGH)
        if data["arrival_rate"] < low:
            self.trace.mark(now, self.name, Events.NOT_ENOUGH)
        elif data["arrival_rate"] > high:
            self.trace.mark(now, self.name, Events.TOO_MUCH)

    def passive_step(self, data: Mapping[str, Any]) -> None:
        """Keep reporting a persisting starvation while passive.

        This is what produces the repeated raiseViol marks in Figure 4's
        first phase: the farm cannot act locally, so it keeps the
        pressure on the parent until a new contract arrives.
        """
        if data["arrival_rate"] < self.constants.FARM_LOW_PERF_LEVEL:
            self.raise_violation(ViolationKind.NOT_ENOUGH_TASKS)

    # -- operations -------------------------------------------------------
    def on_operation(self, op: ManagerOperation, data: Any) -> None:
        if op is ManagerOperation.RAISE_VIOLATION:
            kind = str(data)
            severity = "warning" if kind == ViolationKind.TOO_MUCH_TASKS else "fatal"
            self.raise_violation(kind, severity=severity)
            return
        if op is ManagerOperation.ADD_EXECUTOR:
            count = int(data.get("count", 1)) if isinstance(data, Mapping) else 1
            ok = self._add_workers(count)
            if ok:
                self.trace.mark(self.sim.now, self.name, Events.ADD_WORKER, count=count)
            else:
                self.raise_violation(ViolationKind.NO_LOCAL_PLAN, operation=op.value)
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "repro_reconfigurations_total", "actuator operations executed"
                ).labels(manager=self.name, op=op.value, ok=ok).inc()
            return
        if op is ManagerOperation.REMOVE_EXECUTOR:
            if self.farm_abc.execute(op, data):
                self.trace.mark(self.sim.now, self.name, Events.REMOVE_WORKER)
            # refusing to go below one worker is not a violation
            return
        if op is ManagerOperation.MIGRATE:
            if self.farm_abc.execute(op, None):
                self.trace.mark(self.sim.now, self.name, Events.MIGRATE_WORKER)
            else:
                # no sufficiently faster node: fall back to growing
                self.on_operation(ManagerOperation.ADD_EXECUTOR, data)
            return
        if op is ManagerOperation.BALANCE_LOAD:
            self.farm_abc.execute(op, data)
            if self.farm_abc.last_balance_moved > 0:
                self.trace.mark(
                    self.sim.now,
                    self.name,
                    Events.REBALANCE,
                    moved=self.farm_abc.last_balance_moved,
                )
            return
        super().on_operation(op, data)

    def _add_workers(self, count: int) -> bool:
        """Add workers, via the multi-concern coordinator when present.

        With a coordinator this runs the §3.2 two-phase protocol:
        *intent* (reserve nodes) → concern review (may amend/veto) →
        *commit* (instantiate).  Without one, the naive plan+commit path
        inside the ABC runs directly.
        """
        if self.coordinator is not None:
            ok = self.coordinator.execute_intent(
                self, ManagerOperation.ADD_EXECUTOR, {"count": count}
            )
        else:
            ok = self.farm_abc.execute(ManagerOperation.ADD_EXECUTOR, {"count": count})
        if ok and self.manage_workers:
            self.spawn_worker_managers()
        return ok

    def spawn_worker_managers(self) -> None:
        """Give newly added workers their own (best-effort) managers."""
        managed = {c.worker.worker_id for c in self.children if isinstance(c, WorkerManager)}
        for w in self.farm_abc.farm.workers:
            if w.worker_id not in managed and not w._stopped:
                wm = WorkerManager(
                    f"{self.name}.W{w.worker_id}",
                    self.sim,
                    w,
                    trace=self.trace,
                    control_period=self.control_period,
                )
                self.add_child(wm)
                wm.assign_contract(BestEffortContract())


class PipelineManager(AutonomicManager):
    """AM_A: application manager of a pipeline behavioural skeleton."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        *,
        producer: Optional["ProducerManager"] = None,
        inc_factor: float = 1.3,
        dec_factor: float = 0.92,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, sim, **kwargs)
        if inc_factor <= 1.0:
            raise ManagerError("inc_factor must be > 1")
        if not 0 < dec_factor < 1.0:
            raise ManagerError("dec_factor must be in (0, 1)")
        self.producer = producer
        self.inc_factor = inc_factor
        self.dec_factor = dec_factor
        self.stream_ended = False
        self.escalated: List[Violation] = []
        # child name -> zero-arg callable performing the §4.2 stage-to-farm
        # transformation and returning the replacement manager
        self.stage_promoters: Dict[str, Any] = {}
        self.engine.add_rules(pipeline_rules(self))

    # -- contract handling ----------------------------------------------
    def on_contract(self, contract: Contract) -> None:
        """Pipeline P_spl: forward the throughput SLA to every stage.

        "As the topmost behavioural skeleton is a pipeline, its manager
        AM_A simply forwards the contract to the stage managers AM_P,
        AM_F and AM_C." (§4.2)  The producer stage starts on a
        best-effort basis — it emits at whatever rate the application
        configured — and only receives explicit :class:`RateContract`s
        when violations force incRate/decRate corrections, exactly the
        Figure 4 dynamics.
        """
        for child in self.children:
            if isinstance(child, ProducerManager):
                child.assign_contract(BestEffortContract())
            else:
                child.assign_contract(contract)

    # -- violations from children ----------------------------------------
    def child_violation(self, child: AutonomicManager, violation: Violation) -> None:
        """Queue the violation for the next control tick's rule pass."""
        self.engine.memory.insert(self.make_bean(ViolationBean(violation)))

    # -- rule actions -------------------------------------------------------
    def handle_not_enough(self, violation: Violation) -> None:
        """incRate: demand a higher output rate from the producer."""
        if self.producer is None:
            self.escalate(violation)
            return
        current = self.producer.current_rate()
        new_rate = current * self.inc_factor
        self.trace.mark(
            self.sim.now, self.name, Events.INC_RATE, rate=round(new_rate, 4)
        )
        self.producer.assign_contract(RateContract(new_rate))
        self.acknowledge_violation(violation)

    def handle_too_much(self, violation: Violation) -> None:
        """decRate: ask the producer to slightly slow down (fine-tuning
        memory usage, §4.2 — the contract itself is not at risk)."""
        if self.producer is None:
            return
        current = self.producer.current_rate()
        new_rate = current * self.dec_factor
        self.trace.mark(
            self.sim.now, self.name, Events.DEC_RATE, rate=round(new_rate, 4)
        )
        self.producer.assign_contract(RateContract(new_rate))
        self.acknowledge_violation(violation)

    def acknowledge_violation(self, violation: Violation) -> None:
        """Re-activate the reporting child by re-sending its contract."""
        for child in self.children:
            if child.name == violation.source and child.contract is not None:
                if child.state is ManagerState.PASSIVE:
                    child.assign_contract(child.contract)
                return

    def register_stage_promoter(self, child_name: str, promoter: Any) -> None:
        """Arm the stage-to-farm transformation for one child stage.

        ``promoter`` is a zero-argument callable that rewires the
        mechanism (stop the sequential stage, start a farm over its
        stores) and returns the replacement :class:`FarmManager`.
        """
        self.stage_promoters[child_name] = promoter

    def escalate(self, violation: Violation) -> None:
        """Handle a locally unhandleable child violation.

        If the child has a registered stage promoter and the violation is
        ``contractUnsatisfiable``, apply the §4.2 transformation ("ways to
        transform the pipeline stage into a farm with the workers
        behaving as instances of the original stage"); otherwise pass the
        violation to our own parent.
        """
        promoter = self.stage_promoters.get(violation.source)
        if promoter is not None and violation.kind == ViolationKind.CONTRACT_UNSATISFIABLE:
            self.promote_stage(violation.source, promoter)
            return
        self.escalated.append(violation)
        self.raise_violation(violation.kind, severity=violation.severity, origin=violation.source)

    def promote_stage(self, child_name: str, promoter: Any) -> AutonomicManager:
        """Replace a sequential stage's manager with a farm's (one-shot)."""
        self.stage_promoters.pop(child_name, None)
        old = next((c for c in self.children if c.name == child_name), None)
        if old is not None:
            old.stop()
            self.children.remove(old)
            old.parent = None
        replacement: AutonomicManager = promoter()
        self.add_child(replacement)
        self.trace.mark(
            self.sim.now,
            self.name,
            Events.FARM_STAGE,
            stage=child_name,
            replacement=replacement.name,
        )
        if self.contract is not None:
            replacement.assign_contract(self.contract)
        return replacement

    # -- stream termination -------------------------------------------------
    def notify_end_of_stream(self) -> None:
        """Producer exhausted the stream: stop issuing rate increases."""
        if self.stream_ended:
            return
        self.stream_ended = True
        self.trace.mark(self.sim.now, self.name, Events.END_STREAM)
        self.engine.memory.replace(self.make_bean(EndOfStreamBean(True)))

    def observe(self, data: Mapping[str, Any]) -> None:
        if self.stream_ended:
            # keep the endStream mark visible along the event line, as in
            # Figure 4's last phase
            self.trace.mark(self.sim.now, self.name, Events.END_STREAM)


class ProducerManager(AutonomicManager):
    """AM_P: manager of a rate-controllable producer stage."""

    def __init__(self, name: str, sim: Simulator, abc: ProducerABC, **kwargs: Any) -> None:
        super().__init__(name, sim, abc=abc, **kwargs)
        self.producer_abc = abc

    def current_rate(self) -> float:
        return self.producer_abc.source.rate

    def on_contract(self, contract: Contract) -> None:
        if isinstance(contract, BestEffortContract):
            return
        if not isinstance(contract, RateContract):
            raise ManagerError(
                f"{self.name}: producer manager cannot interpret {type(contract).__name__}"
            )
        ok = self.producer_abc.execute(ManagerOperation.SET_RATE, contract.rate)
        if not ok:
            # The producer is already at its physical limit: tell the
            # parent the demand is unsatisfiable (warning: we still run
            # at max rate, the best locally achievable behaviour).
            self.raise_violation(
                ViolationKind.CONTRACT_UNSATISFIABLE,
                severity="warning",
                demanded=contract.rate,
                achievable=self.producer_abc.source.max_rate,
            )

    def observe(self, data: Mapping[str, Any]) -> None:
        self.trace.sample(f"{self.name}.rate", self.sim.now, data["rate"])


class ConsumerManager(AutonomicManager):
    """AM_C: manager for a sequential sink/consumer stage.

    A sequential stage has no actuators of its own, but it *can* detect
    that it is the pipeline's bottleneck: tasks arrive at contract rate,
    it runs saturated, and still under-delivers.  In that situation no
    local plan exists and it reports ``contractUnsatisfiable`` — which
    the pipeline manager may answer with the §4.2 stage-to-farm
    transformation (see :mod:`repro.core.adaptation`).
    """

    #: backlog (queued tasks) above which, combined with a growing queue
    #: and below-contract delivery, the stage declares itself saturated
    BACKLOG_THRESHOLD = 5

    def __init__(self, name: str, sim: Simulator, abc: StageABC, **kwargs: Any) -> None:
        super().__init__(name, sim, abc=abc, **kwargs)
        self._low = 0.0
        self._reported_bottleneck = False
        self._last_queue_length = 0

    def on_contract(self, contract: Contract) -> None:
        if isinstance(contract, ThroughputRangeContract):
            self._low = contract.low
        elif isinstance(contract, MinThroughputContract):
            self._low = contract.target
        else:
            self._low = 0.0

    def observe(self, data: Mapping[str, Any]) -> None:
        now = self.sim.now
        self.trace.sample(f"{self.name}.departure_rate", now, data["departure_rate"])
        self.trace.sample(f"{self.name}.queue_length", now, data["queue_length"])
        queue_len = data["queue_length"]
        growing = queue_len > self._last_queue_length
        self._last_queue_length = queue_len
        if (
            self._low > 0.0
            and not self._reported_bottleneck
            and data["departure_rate"] < self._low
            and queue_len >= self.BACKLOG_THRESHOLD
            and growing
        ):
            # under-delivering with a growing backlog: the stage itself is
            # the bottleneck and no local plan exists
            self._reported_bottleneck = True
            self.raise_violation(
                ViolationKind.CONTRACT_UNSATISFIABLE,
                stage=self.name,
                backlog=queue_len,
            )


class WorkerManager(AutonomicManager):
    """AM_Wi: best-effort worker manager.

    "The AM_Wi are effectively in passive mode from the AM_F viewpoint,
    but in fact they autonomically try to provide the best performance
    possible locally." (§4.2)  Locally-best behaviour in the simulated
    substrate means keeping its utilisation visible to the farm; it has
    no other actuators.
    """

    def __init__(self, name: str, sim: Simulator, worker: FarmWorker, **kwargs: Any) -> None:
        super().__init__(name, sim, **kwargs)
        self.worker = worker

    def monitor(self) -> Optional[Dict[str, Any]]:
        return {
            "utilization": self.worker.util.utilization(self.sim.now),
            "queue_length": len(self.worker.queue),
            "completed": self.worker.completed,
            "active": self.worker.active,
        }

    def observe(self, data: Mapping[str, Any]) -> None:
        self.engine.memory.replace(self.make_bean(UtilizationBean(data["utilization"])))

    def on_contract(self, contract: Contract) -> None:
        pass  # best-effort: nothing to configure
