"""SLA contracts and the P_spl splitting heuristics.

"The top level manager will receive from the user a contract (SLA)
specifying the constraints on the parameters within which the
application must operate […]. In turn, each lower level manager will be
given a (sub-)contract by its parent." (§3.1)

Contract taxonomy (each judged against a monitor sample):

* :class:`ThroughputRangeContract` — Figure 4's ``c_tRange``
  (0.3–0.7 tasks/s).
* :class:`MinThroughputContract` — Figure 3's 0.6 images/s SLA.
* :class:`BestEffortContract` — the farm gives its workers
  ``c_bestEffort`` "in accordance with the definition of task farm BS"
  (§4.2): always satisfied, workers just do their best locally.
* :class:`RateContract` — an output-rate demand on a producer stage
  (what AM_A's incRate/decRate actions send to AM_P).
* :class:`ParallelismDegreeContract` — a bound on resources used.
* :class:`SecurityContract` — the boolean concern of §3.2: all
  communications touching untrusted domains must be secured.
* :class:`CompositeContract` — conjunction (the paper's two-goal SLA
  ``⟨c_perf, c_sec⟩``).

The **P_spl** solution is :func:`split_contract`: domain-specific
heuristics keyed on the skeleton pattern, exploiting the cost models of
:mod:`repro.skeletons.cost` — a pipeline's throughput SLA is forwarded
unchanged to every stage (slowest-stage model); a parallelism-degree SLA
is split proportionally to stage weights; a farm hands its workers
best-effort sub-contracts.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, List, Mapping, Optional, Sequence

from ..skeletons.ast import Farm, Pipe, Seq, Skeleton
from ..skeletons.cost import stage_weights

__all__ = [
    "Contract",
    "ThroughputRangeContract",
    "MinThroughputContract",
    "MaxLatencyContract",
    "BestEffortContract",
    "RateContract",
    "ParallelismDegreeContract",
    "SecurityContract",
    "CompositeContract",
    "WeightedCompositeContract",
    "derive_super_contract",
    "split_contract",
    "split_rate",
    "split_rate_weighted",
    "split_rate_contract",
    "split_rate_contract_weighted",
    "ContractError",
]


class ContractError(ValueError):
    """Raised for malformed contracts or impossible splits."""


class Contract(abc.ABC):
    """Base SLA: a predicate over monitoring data.

    ``check`` returns True (satisfied), False (violated) or None when the
    sample does not carry the quantities this contract constrains (e.g. a
    security contract judged against a throughput sample).

    ``satisfaction`` refines the boolean into a degree in [0, 1] — the
    quantity the §3.2 "linear combination" super-contract aggregates.
    The default derives it from ``check``; quantitative contracts
    override it with a smooth score so a manager can tell *how far* from
    the SLA the computation is.
    """

    concern: str = "performance"

    @abc.abstractmethod
    def check(self, monitor: Mapping[str, Any]) -> Optional[bool]:
        """Judge one monitoring sample against this contract."""

    def satisfaction(self, monitor: Mapping[str, Any]) -> Optional[float]:
        """Degree of satisfaction in [0, 1] (None if unjudgeable)."""
        verdict = self.check(monitor)
        if verdict is None:
            return None
        return 1.0 if verdict else 0.0

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable contract text (for traces and reports)."""

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class ThroughputRangeContract(Contract):
    """Tasks must be processed at a rate within [low, high] tasks/sec."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ContractError(f"need 0 < low <= high, got [{self.low}, {self.high}]")

    def check(self, monitor: Mapping[str, Any]) -> Optional[bool]:
        rate = monitor.get("departure_rate")
        if rate is None:
            return None
        return self.low <= rate <= self.high

    def describe(self) -> str:
        return f"throughput in [{self.low:g}, {self.high:g}] tasks/s"

    def satisfaction(self, monitor: Mapping[str, Any]) -> Optional[float]:
        rate = monitor.get("departure_rate")
        if rate is None:
            return None
        if self.low <= rate <= self.high:
            return 1.0
        # linear fall-off proportional to relative distance from the band
        if rate < self.low:
            return max(0.0, rate / self.low)
        return max(0.0, self.high / rate)

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class MinThroughputContract(Contract):
    """At least ``target`` results per second (Figure 3's SLA)."""

    target: float

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ContractError(f"target must be positive, got {self.target}")

    def check(self, monitor: Mapping[str, Any]) -> Optional[bool]:
        rate = monitor.get("departure_rate")
        if rate is None:
            return None
        return rate >= self.target

    def satisfaction(self, monitor: Mapping[str, Any]) -> Optional[float]:
        rate = monitor.get("departure_rate")
        if rate is None:
            return None
        return min(1.0, max(0.0, rate / self.target))

    def describe(self) -> str:
        return f"throughput >= {self.target:g} tasks/s"


@dataclass(frozen=True)
class MaxLatencyContract(Contract):
    """Mean task completion latency must stay below ``limit`` seconds.

    Judged against the farm's windowed mean latency; combine with a
    throughput contract in a :class:`CompositeContract` for the classic
    "fast *and* responsive" SLA.
    """

    limit: float

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ContractError(f"latency limit must be positive, got {self.limit}")

    def check(self, monitor: Mapping[str, Any]) -> Optional[bool]:
        lat = monitor.get("mean_latency")
        if lat is None:
            return None
        if lat == 0.0:
            return None  # no completions observed yet: cannot judge
        return lat <= self.limit

    def satisfaction(self, monitor: Mapping[str, Any]) -> Optional[float]:
        lat = monitor.get("mean_latency")
        if lat is None or lat == 0.0:
            return None
        return min(1.0, self.limit / lat)

    def describe(self) -> str:
        return f"mean latency <= {self.limit:g} s"


@dataclass(frozen=True)
class BestEffortContract(Contract):
    """Always satisfied: do the best you can locally (worker AMs)."""

    def check(self, monitor: Mapping[str, Any]) -> Optional[bool]:
        return True

    def describe(self) -> str:
        return "best effort"


@dataclass(frozen=True)
class RateContract(Contract):
    """Produce output at (at least) ``rate`` tasks/second.

    Judged against a producer's monitor sample (its configured rate),
    since a producer that *is* configured at the demanded rate satisfies
    the demand — whether the demand was achievable is reported through
    the actuator result instead.
    """

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ContractError(f"rate must be positive, got {self.rate}")

    def check(self, monitor: Mapping[str, Any]) -> Optional[bool]:
        configured = monitor.get("rate")
        if configured is None:
            return None
        return configured >= self.rate - 1e-9

    def describe(self) -> str:
        return f"output rate >= {self.rate:g} tasks/s"


@dataclass(frozen=True)
class ParallelismDegreeContract(Contract):
    """Use a parallelism degree within [min_degree, max_degree]."""

    min_degree: int = 1
    max_degree: int = 1_000_000

    def __post_init__(self) -> None:
        if not 1 <= self.min_degree <= self.max_degree:
            raise ContractError(
                f"need 1 <= min <= max, got [{self.min_degree}, {self.max_degree}]"
            )

    def check(self, monitor: Mapping[str, Any]) -> Optional[bool]:
        n = monitor.get("num_workers")
        if n is None:
            return None
        return self.min_degree <= n <= self.max_degree

    def describe(self) -> str:
        return f"parallelism degree in [{self.min_degree}, {self.max_degree}]"


@dataclass(frozen=True)
class SecurityContract(Contract):
    """All communications touching untrusted domains must be secured.

    A *boolean* concern (§3.2): "data and code communication is either
    secure or it is not.  Therefore, when considering security concerns,
    they should be given a priority."
    """

    concern: str = "security"

    def check(self, monitor: Mapping[str, Any]) -> Optional[bool]:
        leaks = monitor.get("leak_count")
        insecure = monitor.get("insecure_untrusted_workers")
        if leaks is None and insecure is None:
            return None
        if leaks:
            return False
        if insecure:
            return False
        return True

    def describe(self) -> str:
        return "secure all communications crossing untrusted domains"


class CompositeContract(Contract):
    """Conjunction of sub-contracts (multi-goal SLA)."""

    def __init__(self, parts: Sequence[Contract]) -> None:
        if not parts:
            raise ContractError("composite contract needs at least one part")
        self.parts: List[Contract] = list(parts)

    def check(self, monitor: Mapping[str, Any]) -> Optional[bool]:
        verdicts = [p.check(monitor) for p in self.parts]
        if any(v is False for v in verdicts):
            return False
        if all(v is True for v in verdicts):
            return True
        return None

    def describe(self) -> str:
        return " AND ".join(p.describe() for p in self.parts)

    def of_concern(self, concern: str) -> List[Contract]:
        """The sub-contracts belonging to one concern."""
        return [p for p in self.parts if p.concern == concern]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CompositeContract) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(tuple(self.parts))


class WeightedCompositeContract(CompositeContract):
    """The §3.2 super-contract c̄ derived from c₁ … c_h.

    "For contracts where non-boolean concerns are considered, it may be
    possible to devise c̄ from c₁, …, c_h using some sort of linear
    combination.  This is an area which requires significant further
    investigation." (§3.2)  This class is that investigation's outcome
    for this reproduction:

    * **boolean concerns are hard constraints** — any violated boolean
      part (security) forces the overall score to 0, encoding the
      paper's "c_sec must have priority over c_perf";
    * **quantitative concerns combine linearly** — each part contributes
      its ``satisfaction`` degree times its weight (weights normalised).

    ``check`` holds iff the score reaches ``threshold``, so a GM can
    manage the whole multi-concern SLA through the ordinary single-
    contract machinery.
    """

    #: concerns treated as hard (boolean) constraints
    BOOLEAN_CONCERNS = frozenset({"security"})

    def __init__(
        self,
        parts: Sequence[Contract],
        weights: Optional[Sequence[float]] = None,
        threshold: float = 0.99,
    ) -> None:
        super().__init__(parts)
        if weights is None:
            weights = [1.0] * len(self.parts)
        if len(weights) != len(self.parts):
            raise ContractError("need one weight per part")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ContractError("weights must be non-negative with positive sum")
        if not 0 < threshold <= 1:
            raise ContractError("threshold must be in (0, 1]")
        total = sum(weights)
        self.weights = [w / total for w in weights]
        self.threshold = threshold

    def score(self, monitor: Mapping[str, Any]) -> Optional[float]:
        """Linear-combination satisfaction in [0, 1] (None if unjudgeable)."""
        acc = 0.0
        judged_any = False
        for part, weight in zip(self.parts, self.weights):
            s = part.satisfaction(monitor)
            if part.concern in self.BOOLEAN_CONCERNS:
                if s is None:
                    continue
                judged_any = True
                if s < 1.0:
                    return 0.0  # hard constraint violated
                acc += weight
            else:
                if s is None:
                    continue
                judged_any = True
                acc += weight * s
        if not judged_any:
            return None
        # normalised weights can sum to 1 ± a few ulps
        return min(1.0, max(0.0, acc))

    def check(self, monitor: Mapping[str, Any]) -> Optional[bool]:
        s = self.score(monitor)
        if s is None:
            return None
        return s >= self.threshold

    def satisfaction(self, monitor: Mapping[str, Any]) -> Optional[float]:
        return self.score(monitor)

    def describe(self) -> str:
        parts = ", ".join(
            f"{w:.2f}*({p.describe()})" for p, w in zip(self.parts, self.weights)
        )
        return f"linear[{parts}] >= {self.threshold:g}"


def derive_super_contract(
    contracts: Sequence[Contract], weights: Optional[Sequence[float]] = None
) -> WeightedCompositeContract:
    """Build the GM's c̄ from per-concern contracts (§3.2)."""
    return WeightedCompositeContract(contracts, weights)


# ----------------------------------------------------------------------
# P_spl: contract splitting heuristics
# ----------------------------------------------------------------------

def split_contract(contract: Contract, skeleton: Skeleton) -> List[Contract]:
    """Split ``contract`` into one sub-contract per child of ``skeleton``.

    Heuristics (§3.1):

    * pipeline × throughput — identical contract per stage ("a throughput
      SLA for the pipeline may be split into identical SLAs for the
      pipeline stage AMs");
    * pipeline × parallelism degree — proportional to stage weights;
    * farm × anything performance — best-effort per worker ("it passes
      the AM_Wi a c_bestEffort contract in accordance with the
      definition of task farm BS", §4.2);
    * security — boolean, forwarded unchanged everywhere;
    * composite — split each part, recombine per child.

    A Seq has no children; splitting over it returns [].
    """
    children = skeleton.children
    if not children:
        return []

    if isinstance(contract, CompositeContract):
        per_child: List[List[Contract]] = [[] for _ in children]
        for part in contract.parts:
            for i, sub in enumerate(split_contract(part, skeleton)):
                per_child[i].append(sub)
        return [
            subs[0] if len(subs) == 1 else CompositeContract(subs)
            for subs in per_child
        ]

    if isinstance(contract, SecurityContract):
        return [contract for _ in children]

    if isinstance(skeleton, Farm):
        # One conceptual child (the replicated worker); callers expand to
        # the actual worker count themselves.
        return [BestEffortContract()]

    if isinstance(skeleton, Pipe):
        if isinstance(contract, (ThroughputRangeContract, MinThroughputContract, RateContract, MaxLatencyContract)):
            return [contract for _ in children]
        if isinstance(contract, ParallelismDegreeContract):
            weights = stage_weights(skeleton)
            return _split_degree(contract, weights)
        if isinstance(contract, BestEffortContract):
            return [contract for _ in children]
        raise ContractError(
            f"no pipeline splitting heuristic for {type(contract).__name__}"
        )

    raise ContractError(
        f"no splitting heuristic for {type(contract).__name__} over "
        f"{type(skeleton).__name__}"
    )


def _split_degree(
    contract: ParallelismDegreeContract, weights: Sequence[float]
) -> List[Contract]:
    """Proportional degree split preserving the parent's total budget.

    Minimum degrees stay >= 1 per stage; maxima distribute the parent's
    max budget by weight (largest-remainder rounding so they sum to at
    most the parent max whenever that is feasible).
    """
    n = len(weights)
    if contract.max_degree < n:
        raise ContractError(
            f"cannot split max degree {contract.max_degree} across {n} stages"
        )
    raw = [w * contract.max_degree for w in weights]
    floors = [max(1, math.floor(r)) for r in raw]
    budget = contract.max_degree - sum(floors)
    # distribute remaining budget by largest fractional remainder
    remainders = sorted(
        range(n), key=lambda i: (raw[i] - math.floor(raw[i])), reverse=True
    )
    idx = 0
    while budget > 0 and idx < n:
        floors[remainders[idx]] += 1
        budget -= 1
        idx += 1
    return [
        ParallelismDegreeContract(min_degree=1, max_degree=f) for f in floors
    ]


# ----------------------------------------------------------------------
# exact rate splits (shard sub-contracts)
# ----------------------------------------------------------------------
#
# The degree split above conserves an *integer* budget with largest-
# remainder rounding.  Sharding a farm needs the float analogue: a root
# throughput SLA of R tasks/s split across N shards must hand out child
# rates whose sum is *exactly* R — naive ``R / N`` children leak a few
# ulps on uneven N, and a leaked ulp is a root contract the children can
# collectively satisfy while the parent still observes a violation (or
# vice versa).
#
# The scheme: write R = M * 2**k with M an integer < 2**53 (exact, via
# frexp), split M as an *integer* by largest remainder (the same
# rounding _split_degree uses), and scale each integer share back by
# 2**k.  Every share and every partial sum is an integer <= M times the
# same power of two, hence exactly representable — so plain left-to-
# right float addition incurs no rounding at any step and the float sum
# reproduces R bit-for-bit.  (Schemes that carve R with float cut
# points fail in a tie-to-even corner: when two running sums land
# exactly on half-ulp boundaries of an odd-mantissa target, *no* float
# share can make the rounded sum hit the target.)


def split_rate(total: float, n: int) -> List[float]:
    """Split a positive rate into ``n`` positive floats summing to it exactly.

    ``sum(split_rate(R, n)) == R`` holds for the plain built-in ``sum``
    (left-to-right float addition), not merely for ``math.fsum`` — the
    conservation law shards rely on.
    """
    if n < 1:
        raise ContractError(f"cannot split a rate across {n} shards")
    return split_rate_weighted(total, [1.0] * n)


def split_rate_weighted(total: float, weights: Sequence[float]) -> List[float]:
    """Weighted :func:`split_rate`: child i gets ~``weights[i]`` share.

    Used by shard rebalancing to re-solve the root SLA proportionally to
    observed per-shard demand while still conserving the parent budget
    exactly.
    """
    n = len(weights)
    if n < 1:
        raise ContractError("need at least one weight")
    if not (total > 0) or not math.isfinite(total):
        raise ContractError(f"rate must be positive and finite, got {total}")
    if any(w <= 0 or not math.isfinite(w) for w in weights):
        raise ContractError(f"weights must be positive and finite, got {weights}")
    mantissa, exponent = math.frexp(total)  # total == mantissa * 2**exponent
    units = int(math.ldexp(mantissa, 53))  # exact: 53-bit significand
    if math.ldexp(1.0, exponent - 53) == 0.0 or units < n:
        raise ContractError(
            f"rate {total} is too small to split into {n} positive shares"
        )
    # integer largest-remainder split of ``units`` by weight, min 1 each.
    # Exact rational arithmetic: at this magnitude float products have
    # ulp > 1, so a float floor() would over/under-count whole units.
    exact_weights = [Fraction(w) for w in weights]
    wsum = sum(exact_weights)
    raw = [units * w / wsum for w in exact_weights]
    floors = [max(1, math.floor(r)) for r in raw]
    budget = units - sum(floors)
    if budget < 0:
        raise ContractError(
            f"weights {weights} are too skewed to split rate {total} "
            f"into {n} positive shares"
        )
    by_remainder = sorted(
        range(n), key=lambda i: raw[i] - math.floor(raw[i]), reverse=True
    )
    idx = 0
    while budget > 0:
        floors[by_remainder[idx % n]] += 1
        budget -= 1
        idx += 1
    # every share and partial sum is (integer <= units) * 2**(e-53), so
    # each float addition below the total is exact by representability
    return [math.ldexp(f, exponent - 53) for f in floors]


def split_rate_contract(contract: Contract, n: int) -> List[Contract]:
    """Split a throughput SLA across ``n`` sibling shards, conserving rate.

    This is the shard-tree counterpart of the pipeline heuristics in
    :func:`split_contract`: where a pipeline forwards a throughput SLA
    unchanged to every stage (slowest-stage model), sibling *shards*
    divide the load, so each gets a proportional slice whose rates sum
    exactly to the parent's (see :func:`split_rate`).

    * :class:`MinThroughputContract` / :class:`RateContract` — split the
      target rate.
    * :class:`ThroughputRangeContract` — split both band edges.
    * :class:`MaxLatencyContract` / :class:`BestEffortContract` — latency
      is not additive across shards; forwarded unchanged.
    * :class:`SecurityContract` — boolean, forwarded unchanged.
    * :class:`CompositeContract` — split each part, recombine per shard.
    """
    return split_rate_contract_weighted(contract, [1.0] * max(n, 0))


def split_rate_contract_weighted(
    contract: Contract, weights: Sequence[float]
) -> List[Contract]:
    """Weighted :func:`split_rate_contract` (used by shard rebalancing)."""
    n = len(weights)
    if n < 1:
        raise ContractError("cannot split a contract across zero shards")

    if isinstance(contract, CompositeContract):
        per_shard: List[List[Contract]] = [[] for _ in range(n)]
        for part in contract.parts:
            for i, sub in enumerate(split_rate_contract_weighted(part, weights)):
                per_shard[i].append(sub)
        return [
            subs[0] if len(subs) == 1 else CompositeContract(subs)
            for subs in per_shard
        ]
    if isinstance(contract, MinThroughputContract):
        return [
            MinThroughputContract(target=r)
            for r in split_rate_weighted(contract.target, weights)
        ]
    if isinstance(contract, RateContract):
        return [
            RateContract(rate=r)
            for r in split_rate_weighted(contract.rate, weights)
        ]
    if isinstance(contract, ThroughputRangeContract):
        lows = split_rate_weighted(contract.low, weights)
        highs = split_rate_weighted(contract.high, weights)
        if any(hi < lo for lo, hi in zip(lows, highs)):
            raise ContractError(
                f"cannot split {contract.describe()} into {n} consistent bands"
            )
        return [
            ThroughputRangeContract(lo, hi) for lo, hi in zip(lows, highs)
        ]
    if isinstance(
        contract, (MaxLatencyContract, BestEffortContract, SecurityContract)
    ):
        return [contract for _ in range(n)]
    raise ContractError(
        f"no shard splitting heuristic for {type(contract).__name__}"
    )
