"""Run-time pattern adaptation: the §4.2 stage-to-farm transformation.

"in the pipeline stage case we are investigating ways to transform the
pipeline stage into a farm with the workers behaving as instances of
the original stage" (§4.2).  This module completes that investigation
for the simulated substrate:

:func:`promote_stage_to_farm` performs the mechanism rewiring — stop the
:class:`~repro.sim.pipeline.SeqStage`, start a
:class:`~repro.sim.farm.SimFarm` *in place* over the stage's own input
store, with every worker executing the stage's service work
(``work_override``) and results flowing into the same downstream
callback.  No task in flight is lost: whatever sits in the stage's input
store is simply consumed by the farm's emitter.

:func:`install_stage_promotion` arms a :class:`~repro.core.
skeleton_manager.PipelineManager` with a promoter for one of its
sequential-stage children, so the transformation fires autonomically
when that stage reports ``contractUnsatisfiable`` (saturated yet below
contract).  The skeleton-tree counterpart of this rewrite is
:func:`repro.skeletons.visitors.farm_out_stage`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..gcm.abc_controller import FarmABC
from ..sim.engine import Simulator
from ..sim.farm import SimFarm
from ..sim.network import Network
from ..sim.pipeline import SeqStage
from ..sim.resources import NodePredicate, ResourceManager, any_node
from .manager import AutonomicManager
from .skeleton_manager import ConsumerManager, FarmManager, PipelineManager

__all__ = ["promote_stage_to_farm", "install_stage_promotion"]


def promote_stage_to_farm(
    sim: Simulator,
    stage: SeqStage,
    resources: ResourceManager,
    *,
    degree: int = 2,
    name: Optional[str] = None,
    network: Optional[Network] = None,
    worker_setup_time: float = 5.0,
    rate_window: float = 10.0,
    node_predicate: NodePredicate = any_node,
) -> tuple[SimFarm, FarmABC]:
    """Replace a sequential stage's mechanism with a farm, in place.

    The farm adopts the stage's input store and downstream plumbing
    (``output`` store and/or ``on_done`` callback) and executes the
    stage's ``service_work`` per task.  Returns the farm and its ABC,
    already bootstrapped to ``degree`` workers.
    """
    if degree < 1:
        raise ValueError("farm degree must be >= 1")
    if stage.service_work <= 0:
        raise ValueError(
            "cannot farm a zero-work stage: it cannot be a bottleneck"
        )
    stage.stop()
    farm = SimFarm(
        sim,
        name=name or f"{stage.name}.farm",
        emitter_node=stage.node,
        network=network,
        worker_setup_time=worker_setup_time,
        rate_window=rate_window,
        input_store=stage.input,
        output_store=stage.output,
        work_override=stage.service_work,
        on_result=stage.on_done,
    )
    abc = FarmABC(farm, resources, node_predicate=node_predicate)
    abc.bootstrap(degree)
    return farm, abc


def install_stage_promotion(
    pipeline_manager: PipelineManager,
    stage_manager: ConsumerManager,
    resources: ResourceManager,
    *,
    degree: int = 2,
    network: Optional[Network] = None,
    worker_setup_time: float = 5.0,
    rate_window: float = 10.0,
    node_predicate: NodePredicate = any_node,
    on_promoted: Optional[Callable[[SimFarm, FarmManager], None]] = None,
) -> None:
    """Arm autonomic stage-to-farm promotion for one pipeline stage.

    When ``stage_manager`` reports ``contractUnsatisfiable``, the
    pipeline manager will stop it, rewire its mechanism into a farm of
    ``degree`` stage-instances and install a :class:`FarmManager` (named
    ``<stage>.AM_farm``) over it, re-assigning the stage contract.
    """
    sim = pipeline_manager.sim
    stage = stage_manager.abc.stage  # type: ignore[union-attr]

    def promoter() -> AutonomicManager:
        farm, abc = promote_stage_to_farm(
            sim,
            stage,
            resources,
            degree=degree,
            network=network,
            worker_setup_time=worker_setup_time,
            rate_window=rate_window,
            node_predicate=node_predicate,
        )
        manager = FarmManager(
            f"{stage_manager.name}.farm",
            sim,
            abc,
            trace=pipeline_manager.trace,
            control_period=pipeline_manager.control_period,
            manage_workers=False,
        )
        if on_promoted is not None:
            on_promoted(farm, manager)
        return manager

    pipeline_manager.register_stage_promoter(stage_manager.name, promoter)
