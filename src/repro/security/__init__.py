"""The security concern: trust metadata, toy crypto, AM_sec.

Implements §3.2's second non-functional concern: a boolean SLA ("all
communications crossing untrusted domains are secured") enforced both
reactively (the manager's own control loop) and proactively (intent
review inside the two-phase protocol).
"""

from .crypto import CryptoCostModel, CryptoError, decrypt, encrypt, keystream_xor
from .domains import SecurityPolicy, TrustRegistry
from .manager import (
    ExposureBean,
    LeakBean,
    LiveSecurityManager,
    SecurityABC,
    SecurityManager,
)

__all__ = [
    "CryptoCostModel",
    "CryptoError",
    "encrypt",
    "decrypt",
    "keystream_xor",
    "SecurityPolicy",
    "TrustRegistry",
    "SecurityABC",
    "SecurityManager",
    "LiveSecurityManager",
    "ExposureBean",
    "LeakBean",
]
