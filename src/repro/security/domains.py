"""Security metadata: trust registry and channel policy.

The paper's security management relies on "meta-information describing
the security of the network interconnections used" ([20], recalled in
the conclusions): given that metadata, the manager can determine *in an
autonomic way* whether code staging and data communications must use a
secure protocol — securing only when strictly needed, "thus avoiding
the introduction of unnecessary overheads".

:class:`SecurityPolicy` is that decision procedure: a channel needs
securing iff it crosses a non-private segment (either endpoint in an
untrusted domain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set

from ..sim.resources import Domain, Node

__all__ = ["TrustRegistry", "SecurityPolicy"]


class TrustRegistry:
    """Mutable registry of domain trust metadata.

    The registry *overrides* the static ``Domain.trusted`` flag, letting
    an administrator revoke trust at run time (a domain found to be
    compromised mid-run) — the security manager picks the change up at
    its next control tick.
    """

    def __init__(self) -> None:
        self._overrides: Dict[str, bool] = {}

    def set_trust(self, domain_name: str, trusted: bool) -> None:
        """Override a domain's trust level."""
        self._overrides[domain_name] = trusted

    def clear(self, domain_name: str) -> None:
        """Remove the override (fall back to the domain's own flag)."""
        self._overrides.pop(domain_name, None)

    def is_trusted(self, domain: Domain) -> bool:
        """Effective trust of a domain under current overrides."""
        return self._overrides.get(domain.name, domain.trusted)

    def untrusted_names(self, domains: Iterable[Domain]) -> Set[str]:
        return {d.name for d in domains if not self.is_trusted(d)}


@dataclass
class SecurityPolicy:
    """Decides which channels require the secure protocol."""

    registry: TrustRegistry = field(default_factory=TrustRegistry)

    def node_trusted(self, node: Node) -> bool:
        return self.registry.is_trusted(node.domain)

    def needs_secure(self, src: Node, dst: Node) -> bool:
        """True iff plaintext traffic src→dst would cross untrusted ground.

        Co-located components communicate through memory and never need
        securing; otherwise either untrusted endpoint taints the path.
        """
        if src.name == dst.name:
            return False
        return not (self.node_trusted(src) and self.node_trusted(dst))

    def worker_exposed(self, emitter: Node, worker_node: Node, secured: bool) -> bool:
        """True iff a farm worker's channel violates the security concern."""
        return self.needs_secure(emitter, worker_node) and not secured
