"""Toy transport encryption and its cost model.

The paper's security concern requires that "communications must be
implemented with SSL instead of plain TCP/IP sockets" when crossing
untrusted domains (§3.2), and earlier work [31] measured the overhead of
doing so in skeletal systems.  We cannot ship OpenSSL, so this module
provides:

* a real (toy) stream cipher — SHA-256 keystream XOR with an
  authentication tag — used by the *threaded* runtime so secured
  channels genuinely transform bytes;
* :class:`CryptoCostModel` — the analytic overhead (a multiplicative
  throughput factor plus a fixed per-connection handshake) used by the
  simulated :class:`~repro.sim.network.Network`.  Defaults reproduce the
  10–40% overhead band reported in [31]; :meth:`CryptoCostModel.
  calibrate` measures the toy cipher on this machine instead.

This is NOT real cryptography (no nonce management, toy KDF); it exists
to exercise the code paths and cost structure of secured channels.
"""

from __future__ import annotations

import hashlib
import hmac
import time
from dataclasses import dataclass

__all__ = ["keystream_xor", "encrypt", "decrypt", "CryptoCostModel", "CryptoError"]

_TAG_LEN = 16


class CryptoError(RuntimeError):
    """Raised on authentication failure during decryption."""


def keystream_xor(key: bytes, data: bytes) -> bytes:
    """XOR ``data`` with a SHA-256 counter-mode keystream."""
    out = bytearray(len(data))
    block = 0
    pos = 0
    while pos < len(data):
        ks = hashlib.sha256(key + block.to_bytes(8, "big")).digest()
        chunk = data[pos : pos + len(ks)]
        for i, b in enumerate(chunk):
            out[pos + i] = b ^ ks[i]
        pos += len(ks)
        block += 1
    return bytes(out)


def encrypt(key: bytes, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC: ciphertext || HMAC-SHA256 tag (truncated)."""
    ciphertext = keystream_xor(key, plaintext)
    tag = hmac.new(key, ciphertext, hashlib.sha256).digest()[:_TAG_LEN]
    return ciphertext + tag

def decrypt(key: bytes, message: bytes) -> bytes:
    """Verify the tag and recover the plaintext.

    Raises :class:`CryptoError` if the message was tampered with.
    """
    if len(message) < _TAG_LEN:
        raise CryptoError("message too short")
    ciphertext, tag = message[:-_TAG_LEN], message[-_TAG_LEN:]
    expected = hmac.new(key, ciphertext, hashlib.sha256).digest()[:_TAG_LEN]
    if not hmac.compare_digest(tag, expected):
        raise CryptoError("authentication failed")
    return keystream_xor(key, ciphertext)


@dataclass
class CryptoCostModel:
    """Analytic cost of securing a channel.

    ``factor`` multiplies the plain transfer time; ``handshake`` adds a
    fixed latency per secured transfer (session setup amortisation).
    """

    factor: float = 1.3
    handshake: float = 0.005

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("crypto factor must be >= 1.0")
        if self.handshake < 0:
            raise ValueError("handshake cost must be >= 0")

    def secured_time(self, plain_time: float) -> float:
        """Transfer time of a secured message given its plain time."""
        return plain_time * self.factor + self.handshake

    def overhead_fraction(self, plain_time: float) -> float:
        """Relative overhead of securing one transfer."""
        if plain_time <= 0:
            return 0.0
        return (self.secured_time(plain_time) - plain_time) / plain_time

    @classmethod
    def calibrate(
        cls, payload_kb: float = 64.0, reference_bandwidth_kbps: float = 100_000.0
    ) -> "CryptoCostModel":
        """Measure the toy cipher to derive a machine-specific factor.

        Times an encrypt+decrypt round trip of ``payload_kb`` and
        expresses it relative to the time the reference network would
        take to move the same payload in the clear.
        """
        key = b"calibration-key"
        payload = bytes(int(payload_kb * 1024))
        t0 = time.perf_counter()
        decrypt(key, encrypt(key, payload))
        crypto_cost = time.perf_counter() - t0
        plain_time = payload_kb / reference_bandwidth_kbps
        factor = 1.0 + crypto_cost / max(plain_time, 1e-9)
        # clamp to a sane band: even slow machines shouldn't make the
        # simulation degenerate
        factor = min(max(factor, 1.05), 5.0)
        return cls(factor=factor, handshake=0.005)
