"""The security autonomic manager (AM_sec) and its ABC.

Section 3.2's second concern hierarchy: a manager whose goal is that no
plaintext data crosses untrusted network segments.  It participates in
multi-concern coordination in two ways:

* **reactively** — its own MAPE loop scans the managed farms for
  *exposed* workers (unsecured bindings to untrusted nodes) and for
  recorded leaks, and fires ``SECURE_CHANNEL`` to close the hole.  This
  is the only defence available in *naive* coordination mode and is
  inherently late: messages sent between the worker's instantiation and
  the next security tick leak (the window the paper warns about).
* **proactively** — :meth:`SecurityManager.review_intent` implements
  phase two of the two-phase intent protocol: when AM_perf proposes new
  workers, any reserved node in an untrusted domain gets its plan entry
  amended to ``secure`` *before* instantiation, so not a single message
  leaks.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Mapping, Optional

from ..gcm.abc_controller import (
    AutonomicBehaviourController,
    FarmABC,
    PlannedReconfiguration,
)
from ..rules.beans import Bean, ManagerOperation
from ..rules.dsl import rule, value_gt
from ..sim.engine import Simulator
from ..sim.network import Network
from ..core.contracts import Contract, SecurityContract
from ..core.events import Events
from ..core.manager import AutonomicManager
from ..core.multiconcern import ConcernReview
from .domains import SecurityPolicy

__all__ = ["SecurityABC", "SecurityManager", "ExposureBean", "LeakBean"]


class ExposureBean(Bean):
    """Number of exposed workers (unsecured channels to untrusted nodes)."""


class LeakBean(Bean):
    """Number of plaintext messages that have crossed untrusted links."""


class SecurityABC(AutonomicBehaviourController):
    """Monitoring + actuators for the security concern.

    Oversees one or more farm ABCs plus the network audit log.
    """

    _OPS = frozenset({ManagerOperation.SECURE_CHANNEL})

    def __init__(
        self,
        farm_abcs: List[FarmABC],
        network: Optional[Network],
        policy: SecurityPolicy,
    ) -> None:
        self.farm_abcs = list(farm_abcs)
        self.network = network
        self.policy = policy
        self.secured_actions = 0

    # -- monitoring ------------------------------------------------------
    def exposed_workers(self) -> List[Any]:
        """All farm workers whose channel violates the policy right now."""
        exposed = []
        for fabc in self.farm_abcs:
            farm = fabc.farm
            for w in farm.workers:
                if w._stopped:
                    continue
                if self.policy.worker_exposed(farm.emitter_node, w.node, w.secured):
                    exposed.append(w)
        return exposed

    def monitor(self) -> Optional[Dict[str, Any]]:
        return {
            "insecure_untrusted_workers": len(self.exposed_workers()),
            "leak_count": self.network.leak_count if self.network else 0,
            "secured_actions": self.secured_actions,
        }

    # -- actuators ---------------------------------------------------------
    def supported_operations(self) -> FrozenSet[ManagerOperation]:
        return self._OPS

    def execute(self, op: ManagerOperation, data: Any = None) -> bool:
        if op is ManagerOperation.SECURE_CHANNEL:
            exposed = self.exposed_workers()
            for fabc in self.farm_abcs:
                for w in exposed:
                    if w.farm is fabc.farm:
                        fabc.farm.secure_worker(w)
                        self.secured_actions += 1
            return True
        raise ValueError(f"SecurityABC does not implement {op}")


class SecurityManager(AutonomicManager, ConcernReview):
    """AM_sec: keeps every channel crossing untrusted ground secured."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        abc: SecurityABC,
        **kwargs: Any,
    ) -> None:
        kwargs.setdefault("concern", "security")
        super().__init__(name, sim, abc=abc, **kwargs)
        self.security_abc = abc
        self.engine.add_rules(self._rules())

    def _rules(self):
        def secure_exposed(act):
            act["exposure"].fire_operation(ManagerOperation.SECURE_CHANNEL)

        return [
            rule("SecureExposedWorkers")
            .doc("close any unsecured channel to an untrusted node")
            .salience(50)
            .when(ExposureBean, value_gt(0), bind="exposure")
            .then(secure_exposed),
        ]

    # -- MAPE hooks --------------------------------------------------------
    def on_contract(self, contract: Contract) -> None:
        if not isinstance(contract, SecurityContract):
            raise ValueError(
                f"{self.name}: security manager needs a SecurityContract, "
                f"got {type(contract).__name__}"
            )

    def observe(self, data: Mapping[str, Any]) -> None:
        mem = self.engine.memory
        mem.replace(self.make_bean(ExposureBean(data["insecure_untrusted_workers"])))
        mem.replace(self.make_bean(LeakBean(data["leak_count"])))
        now = self.sim.now
        self.trace.sample(f"{self.name}.exposed", now, data["insecure_untrusted_workers"])
        self.trace.sample(f"{self.name}.leaks", now, data["leak_count"])
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.gauge(
                "repro_security_exposed_workers",
                "workers with unsecured channels to untrusted nodes",
            ).labels(manager=self.name).set(data["insecure_untrusted_workers"])
            tel.metrics.gauge(
                "repro_security_leaked_messages",
                "plaintext messages that crossed untrusted links",
            ).labels(manager=self.name).set(data["leak_count"])

    def on_operation(self, op: ManagerOperation, data: Any) -> None:
        if op is ManagerOperation.SECURE_CHANNEL:
            n_before = len(self.security_abc.exposed_workers())
            self.security_abc.execute(op, data)
            self.trace.mark(
                self.sim.now, self.name, Events.SECURE_WORKER, count=n_before
            )
            return
        super().on_operation(op, data)

    # -- two-phase protocol (phase 2) ---------------------------------------
    def review_intent(
        self, originator: AutonomicManager, plan: PlannedReconfiguration
    ) -> bool:
        """Amend the plan: any untrusted reserved node must run secured.

        Never vetoes — security is always *achievable* by securing the
        channel; it just costs throughput (the perf/sec trade-off the
        paper leaves to the GM's contract arithmetic).
        """
        amended = []
        for node in plan.nodes:
            if not self.security_abc.policy.node_trusted(node):
                plan.require_secure(node)
                amended.append(node)
        if amended and self.telemetry.enabled:
            self.telemetry.event("security.amend", nodes=amended)
        return True
