"""The security autonomic manager (AM_sec) and its ABC.

Section 3.2's second concern hierarchy: a manager whose goal is that no
plaintext data crosses untrusted network segments.  It participates in
multi-concern coordination in two ways:

* **reactively** — its own MAPE loop scans the managed farms for
  *exposed* workers (unsecured bindings to untrusted nodes) and for
  recorded leaks, and fires ``SECURE_CHANNEL`` to close the hole.  This
  is the only defence available in *naive* coordination mode and is
  inherently late: messages sent between the worker's instantiation and
  the next security tick leak (the window the paper warns about).
* **proactively** — :meth:`SecurityManager.review_intent` implements
  phase two of the two-phase intent protocol: when AM_perf proposes new
  workers, any reserved node in an untrusted domain gets its plan entry
  amended to ``secure`` *before* instantiation, so not a single message
  leaks.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..gcm.abc_controller import (
    AutonomicBehaviourController,
    FarmABC,
    PlannedReconfiguration,
)
from ..obs.telemetry import NOOP, Telemetry
from ..rules.beans import Bean, ManagerOperation
from ..rules.dsl import rule, value_gt
from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.resources import TRUSTED_DEFAULT, Node
from ..core.contracts import Contract, SecurityContract
from ..core.events import Events
from ..core.manager import AutonomicManager
from ..core.multiconcern import ConcernReview
from .domains import SecurityPolicy

__all__ = [
    "SecurityABC",
    "SecurityManager",
    "LiveSecurityManager",
    "ExposureBean",
    "LeakBean",
]


class ExposureBean(Bean):
    """Number of exposed workers (unsecured channels to untrusted nodes)."""


class LeakBean(Bean):
    """Number of plaintext messages that have crossed untrusted links."""


class SecurityABC(AutonomicBehaviourController):
    """Monitoring + actuators for the security concern.

    Oversees one or more farm ABCs plus the network audit log.
    """

    _OPS = frozenset({ManagerOperation.SECURE_CHANNEL})

    def __init__(
        self,
        farm_abcs: List[FarmABC],
        network: Optional[Network],
        policy: SecurityPolicy,
    ) -> None:
        self.farm_abcs = list(farm_abcs)
        self.network = network
        self.policy = policy
        self.secured_actions = 0

    # -- monitoring ------------------------------------------------------
    def exposed_workers(self) -> List[Any]:
        """All farm workers whose channel violates the policy right now."""
        exposed = []
        for fabc in self.farm_abcs:
            farm = fabc.farm
            for w in farm.workers:
                if w._stopped:
                    continue
                if self.policy.worker_exposed(farm.emitter_node, w.node, w.secured):
                    exposed.append(w)
        return exposed

    def monitor(self) -> Optional[Dict[str, Any]]:
        return {
            "insecure_untrusted_workers": len(self.exposed_workers()),
            "leak_count": self.network.leak_count if self.network else 0,
            "secured_actions": self.secured_actions,
        }

    # -- actuators ---------------------------------------------------------
    def supported_operations(self) -> FrozenSet[ManagerOperation]:
        return self._OPS

    def execute(self, op: ManagerOperation, data: Any = None) -> bool:
        if op is ManagerOperation.SECURE_CHANNEL:
            exposed = self.exposed_workers()
            for fabc in self.farm_abcs:
                for w in exposed:
                    if w.farm is fabc.farm:
                        fabc.farm.secure_worker(w)
                        self.secured_actions += 1
            return True
        raise ValueError(f"SecurityABC does not implement {op}")


class SecurityManager(AutonomicManager, ConcernReview):
    """AM_sec: keeps every channel crossing untrusted ground secured."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        abc: SecurityABC,
        **kwargs: Any,
    ) -> None:
        kwargs.setdefault("concern", "security")
        super().__init__(name, sim, abc=abc, **kwargs)
        self.security_abc = abc
        self.engine.add_rules(self._rules())

    def _rules(self):
        def secure_exposed(act):
            act["exposure"].fire_operation(ManagerOperation.SECURE_CHANNEL)

        return [
            rule("SecureExposedWorkers")
            .doc("close any unsecured channel to an untrusted node")
            .salience(50)
            .when(ExposureBean, value_gt(0), bind="exposure")
            .then(secure_exposed),
        ]

    # -- MAPE hooks --------------------------------------------------------
    def on_contract(self, contract: Contract) -> None:
        if not isinstance(contract, SecurityContract):
            raise ValueError(
                f"{self.name}: security manager needs a SecurityContract, "
                f"got {type(contract).__name__}"
            )

    def observe(self, data: Mapping[str, Any]) -> None:
        mem = self.engine.memory
        mem.replace(self.make_bean(ExposureBean(data["insecure_untrusted_workers"])))
        mem.replace(self.make_bean(LeakBean(data["leak_count"])))
        now = self.sim.now
        self.trace.sample(f"{self.name}.exposed", now, data["insecure_untrusted_workers"])
        self.trace.sample(f"{self.name}.leaks", now, data["leak_count"])
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.gauge(
                "repro_security_exposed_workers",
                "workers with unsecured channels to untrusted nodes",
            ).labels(manager=self.name).set(data["insecure_untrusted_workers"])
            tel.metrics.gauge(
                "repro_security_leaked_messages",
                "plaintext messages that crossed untrusted links",
            ).labels(manager=self.name).set(data["leak_count"])

    def on_operation(self, op: ManagerOperation, data: Any) -> None:
        if op is ManagerOperation.SECURE_CHANNEL:
            n_before = len(self.security_abc.exposed_workers())
            self.security_abc.execute(op, data)
            self.trace.mark(
                self.sim.now, self.name, Events.SECURE_WORKER, count=n_before
            )
            return
        super().on_operation(op, data)

    # -- two-phase protocol (phase 2) ---------------------------------------
    def review_intent(
        self, originator: AutonomicManager, plan: PlannedReconfiguration
    ) -> bool:
        """Amend the plan: any untrusted reserved node must run secured.

        Never vetoes — security is always *achievable* by securing the
        channel; it just costs throughput (the perf/sec trade-off the
        paper leaves to the GM's contract arithmetic).
        """
        amended = []
        for node in plan.nodes:
            if not self.security_abc.policy.node_trusted(node):
                plan.require_secure(node)
                amended.append(node)
        if amended and self.telemetry.enabled:
            self.telemetry.event("security.amend", nodes=amended)
        return True


class LiveSecurityManager(ConcernReview):
    """AM_sec over a live :class:`~repro.runtime.backend.FarmBackend`.

    The wall-clock counterpart of :class:`SecurityManager`, built for
    the live GM (:class:`~repro.runtime.multiconcern.LiveGeneralManager`)
    rather than the simulator.  Same two faces:

    * **reactively** — :meth:`control_step` (run by its own thread, like
      the performance :class:`~repro.runtime.controller.FarmController`)
      scans the farm for exposed workers — unsecured channels whose
      bound node sits on untrusted ground, per the
      :class:`~repro.runtime.multiconcern.WorkerPlacement` binding — and
      secures them on the spot.  On the dist farm that is a real wire
      handshake.  This path alone is the late defence; under naive
      coordination, tasks dispatched before this tick travel plaintext.
    * **proactively** — :meth:`review_intent` amends grow plans so every
      untrusted node is secured *before* admission, and can veto
      outright when a reserved node belongs to a domain in
      ``veto_domains`` (e.g. a domain whose trust was revoked mid-run
      and must not host workers at all).
    """

    #: boolean concern → the GM defaults this manager to priority 10
    concern = "security"

    def __init__(
        self,
        farm: Any,
        placement: Any,
        *,
        policy: Optional[SecurityPolicy] = None,
        emitter_node: Optional[Node] = None,
        veto_domains: Tuple[str, ...] = (),
        control_period: float = 0.25,
        telemetry: Optional[Telemetry] = None,
        name: str = "AM_sec_live",
    ) -> None:
        if control_period <= 0:
            raise ValueError("control_period must be positive")
        self.farm = farm
        self.placement = placement
        self.policy = policy if policy is not None else SecurityPolicy()
        #: where the emitter/collector run — one end of every channel
        self.emitter_node = emitter_node or Node("emitter", domain=TRUSTED_DEFAULT)
        self.veto_domains = frozenset(veto_domains)
        self.control_period = control_period
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.name = name
        self.coordinator: Optional[Any] = None
        self.secured_actions = 0
        self.amendments = 0
        self.vetoes = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- monitoring --------------------------------------------------------
    def exposed_workers(self) -> List[Tuple[int, Node]]:
        """``(worker_id, node)`` for every live channel violating policy.

        Only workers with a placement binding are considered: a worker
        the GM never placed has no node identity, hence no domain to
        distrust.  Quarantined workers are skipped — the admission gate
        already guarantees they receive no tasks, and the GM commit that
        owns them is securing their channel; a reactive handshake here
        would just race it.
        """
        exposed: List[Tuple[int, Node]] = []
        for w in self.farm.workers:
            if not getattr(w, "active", True) or getattr(w, "retiring", False):
                continue
            if getattr(w, "quarantined", False):
                continue
            node = self.placement.node_of(w.worker_id)
            if node is None:
                continue
            if self.policy.worker_exposed(self.emitter_node, node, w.secured):
                exposed.append((w.worker_id, node))
        return exposed

    # -- MAPE tick (public so tests can drive it deterministically) --------
    def control_step(self) -> List[int]:
        """One reactive tick: find exposed workers, secure their channels."""
        tel = self.telemetry
        secured: List[int] = []
        with tel.span("mape.cycle", actor=self.name) as cycle:
            exposed = self.exposed_workers()
            if tel.enabled:
                tel.metrics.gauge(
                    "repro_security_exposed_workers",
                    "workers with unsecured channels to untrusted nodes",
                ).labels(manager=self.name).set(len(exposed))
                cycle.set_attribute("exposed", len(exposed))
            for worker_id, node in exposed:
                if self.farm.secure_worker(worker_id):
                    secured.append(worker_id)
                    self.secured_actions += 1
                    tel.event(
                        "security.secure", worker=worker_id, node=node.name
                    )
                    if tel.enabled:
                        tel.metrics.counter(
                            "repro_mc_reactive_secured_total",
                            "channels secured reactively, after instantiation",
                        ).labels(manager=self.name).inc()
        return secured

    # -- loop lifecycle ----------------------------------------------------
    def start(self) -> "LiveSecurityManager":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="security-manager", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)

    def _loop(self) -> None:
        while not self._stop.wait(self.control_period):
            self.control_step()

    # -- two-phase protocol (phase 2) --------------------------------------
    def review_intent(self, originator: Any, plan: PlannedReconfiguration) -> bool:
        """Amend untrusted nodes to run secured; veto forbidden domains.

        Unlike the simulated manager this one *can* veto: a node in one
        of ``veto_domains`` must not host a worker even over a secured
        channel (trust was revoked outright), so the whole plan dies and
        the originator's grow intent fails closed.
        """
        for node in plan.nodes:
            if node.domain.name in self.veto_domains:
                self.vetoes += 1
                self.telemetry.event(
                    "security.veto", node=node.name, domain=node.domain.name
                )
                return False
        amended = []
        for node in plan.nodes:
            if not self.policy.node_trusted(node):
                plan.require_secure(node)
                amended.append(node.name)
        if amended:
            self.amendments += len(amended)
            self.telemetry.event("security.amend", nodes=amended)
        return True
