"""Autonomic Behaviour Controllers: the paper's ABC membrane component.

"The AM interacts with (uses services provided by) an Autonomic
Behaviour Controller (ABC) that provides methods to access the
computation status (monitoring) and to implement the actions ordered by
the AM (actuators)." (§4.1)

The ABC is the *passive part* of autonomic management (§3.1's P_rol
solution): pure mechanism, no policy.  Three concrete ABCs cover the
paper's component kinds:

* :class:`FarmABC` — wraps a :class:`~repro.sim.farm.SimFarm` plus the
  resource manager.  Its ``ADD_EXECUTOR`` actuator is split into
  **plan / commit / abort** so the multi-concern two-phase protocol of
  §3.2 can interpose between resource recruitment and worker
  instantiation ("AM_perf should express the *intent* to add a new
  node; AM_sec could react by prompting securing of communications;
  AM_perf may then instantiate the new secure worker").
* :class:`ProducerABC` — wraps a rate-controllable
  :class:`~repro.sim.workload.TaskSource` (``SET_RATE``).
* :class:`StageABC` — wraps a sequential
  :class:`~repro.sim.pipeline.SeqStage` (monitor only).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional

from ..rules.beans import ManagerOperation
from ..sim.farm import FarmWorker, SimFarm
from ..sim.pipeline import SeqStage
from ..sim.resources import Node, NodePredicate, ResourceManager, any_node
from ..sim.workload import TaskSource

__all__ = [
    "AutonomicBehaviourController",
    "FarmABC",
    "ProducerABC",
    "StageABC",
    "PlannedReconfiguration",
    "ABCError",
]


class ABCError(RuntimeError):
    """Raised for invalid actuator usage."""


class AutonomicBehaviourController(abc.ABC):
    """Monitoring + actuator surface offered to an autonomic manager."""

    NAME = "autonomic-behaviour-controller"

    @abc.abstractmethod
    def monitor(self) -> Optional[Dict[str, Any]]:
        """Current sensor data, or None during a reconfiguration blackout."""

    @abc.abstractmethod
    def supported_operations(self) -> FrozenSet[ManagerOperation]:
        """Actuator verbs this controller implements."""

    @abc.abstractmethod
    def execute(self, op: ManagerOperation, data: Any = None) -> bool:
        """Perform ``op``; returns False when the mechanism cannot comply
        (e.g. no resources available) — the signal a manager turns into a
        violation report to its parent."""

    def can_execute(self, op: ManagerOperation) -> bool:
        return op in self.supported_operations()


@dataclass
class PlannedReconfiguration:
    """An *intent* to add workers: resources reserved, nothing running yet.

    Between :meth:`FarmABC.plan_add_workers` and
    :meth:`FarmABC.commit_plan`, other managers may inspect the chosen
    nodes and amend the plan (``require_secure``) — phase one of the
    §3.2 two-phase protocol.
    """

    nodes: List[Node]
    secured: Dict[str, bool] = field(default_factory=dict)
    committed: bool = False
    aborted: bool = False

    def require_secure(self, node: Node) -> None:
        """Mark one reserved node's future bindings as secure."""
        self.secured[node.name] = True

    def require_secure_all(self) -> None:
        for n in self.nodes:
            self.secured[n.name] = True

    @property
    def open(self) -> bool:
        return not (self.committed or self.aborted)


class FarmABC(AutonomicBehaviourController):
    """ABC for a task-farm behavioural skeleton."""

    _OPS = frozenset(
        {
            ManagerOperation.ADD_EXECUTOR,
            ManagerOperation.REMOVE_EXECUTOR,
            ManagerOperation.BALANCE_LOAD,
            ManagerOperation.SECURE_CHANNEL,
            ManagerOperation.MIGRATE,
        }
    )

    #: a candidate node must be this much faster than the victim's for a
    #: migration to be worth the reconfiguration cost
    MIGRATION_SPEEDUP = 1.2

    def __init__(
        self,
        farm: SimFarm,
        resources: ResourceManager,
        *,
        node_predicate: NodePredicate = any_node,
        secure_by_default: bool = False,
        nodes_per_executor: int = 1,
    ) -> None:
        if nodes_per_executor < 1:
            raise ABCError("nodes_per_executor must be >= 1")
        self.farm = farm
        self.resources = resources
        self.node_predicate = node_predicate
        self.secure_by_default = secure_by_default
        # >1 when an "executor" is a composite (e.g. a pipeline replica in
        # a farm-of-pipelines, which needs one node per stage)
        self.nodes_per_executor = nodes_per_executor
        self._worker_nodes: Dict[int, List[Node]] = {}
        self.last_balance_moved = 0

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def monitor(self) -> Optional[Dict[str, Any]]:
        snap = self.farm.snapshot()
        if snap is None:
            return None
        return {
            "time": snap.time,
            "arrival_rate": snap.arrival_rate,
            "departure_rate": snap.departure_rate,
            "num_workers": snap.num_workers,
            "queue_lengths": snap.queue_lengths,
            "queue_variance": snap.queue_variance,
            "utilization": snap.utilization,
            "completed": snap.completed,
            "pending": snap.pending,
            "mean_latency": snap.mean_latency,
            "end_of_stream": self.farm.end_of_stream,
        }

    @property
    def nodes_in_use(self) -> List[Node]:
        """Nodes currently hosting active or deploying workers."""
        out: List[Node] = []
        for w in self.farm.workers:
            if not w._stopped and w.worker_id in self._worker_nodes:
                out.extend(self._worker_nodes[w.worker_id])
        return out

    # ------------------------------------------------------------------
    # two-phase reconfiguration (intent protocol, §3.2)
    # ------------------------------------------------------------------
    def plan_add_workers(self, count: int = 1) -> Optional[PlannedReconfiguration]:
        """Reserve nodes for ``count`` executors; None if they can't be had."""
        nodes = self.resources.try_recruit(
            count * self.nodes_per_executor, self.node_predicate
        )
        if not nodes:
            return None
        return PlannedReconfiguration(nodes)

    def commit_plan(self, plan: PlannedReconfiguration) -> List[FarmWorker]:
        """Instantiate executors on the plan's reserved nodes."""
        if not plan.open:
            raise ABCError("plan already committed or aborted")
        plan.committed = True
        workers = []
        k = self.nodes_per_executor
        for i in range(0, len(plan.nodes), k):
            group = plan.nodes[i : i + k]
            secured = any(
                plan.secured.get(n.name, self.secure_by_default) for n in group
            )
            if k == 1:
                worker = self.farm.add_worker(group[0], secured=secured)
            else:
                worker = self.farm.add_worker(group, secured=secured)
            self._worker_nodes[worker.worker_id] = list(group)
            workers.append(worker)
        return workers

    def abort_plan(self, plan: PlannedReconfiguration) -> None:
        """Release the plan's reserved nodes without instantiating."""
        if not plan.open:
            raise ABCError("plan already committed or aborted")
        plan.aborted = True
        self.resources.release_all(plan.nodes)

    # ------------------------------------------------------------------
    # actuators
    # ------------------------------------------------------------------
    def supported_operations(self) -> FrozenSet[ManagerOperation]:
        return self._OPS

    def execute(self, op: ManagerOperation, data: Any = None) -> bool:
        if op is ManagerOperation.ADD_EXECUTOR:
            count = int(data.get("count", 1)) if isinstance(data, Mapping) else 1
            plan = self.plan_add_workers(count)
            if plan is None:
                return False
            self.commit_plan(plan)
            return True
        if op is ManagerOperation.REMOVE_EXECUTOR:
            worker = self.farm.remove_worker()
            if worker is None:
                return False
            nodes = self._worker_nodes.pop(worker.worker_id, None)
            if nodes:
                self.resources.release_all(nodes)
            return True
        if op is ManagerOperation.BALANCE_LOAD:
            self.last_balance_moved = self.farm.balance_load()
            return True
        if op is ManagerOperation.SECURE_CHANNEL:
            if isinstance(data, FarmWorker):
                self.farm.secure_worker(data)
            else:
                self.farm.secure_all()
            return True
        if op is ManagerOperation.MIGRATE:
            return self._migrate_slowest()
        raise ABCError(f"FarmABC does not implement {op}")

    def _migrate_slowest(self) -> bool:
        """Move the worst-performing worker to a clearly faster free node.

        Returns False when no live worker exists, or no free node beats
        the victim's current effective speed by ``MIGRATION_SPEEDUP`` —
        in which case the manager should fall back to adding capacity.
        """
        now = self.farm.sim.now
        live = [w for w in self.farm.workers if w.active]
        if not live:
            return False
        victim = min(live, key=lambda w: w.node.effective_speed(now))
        victim_speed = victim.node.effective_speed(now)
        candidates = [
            n
            for n in self.resources.available(self.node_predicate)
            if n.effective_speed(now) >= victim_speed * self.MIGRATION_SPEEDUP
        ]
        if not candidates:
            return False
        target = max(candidates, key=lambda n: n.effective_speed(now))
        self.resources.recruit(1, lambda n: n is target)
        replacement = self.farm.migrate_worker(victim, target)
        old_nodes = self._worker_nodes.pop(victim.worker_id, None)
        if old_nodes:
            self.resources.release_all(old_nodes)
        self._worker_nodes[replacement.worker_id] = [target]
        return True

    def bootstrap(self, degree: int, *, secured: Optional[bool] = None) -> List[FarmWorker]:
        """Initial deployment: recruit and start ``degree`` workers."""
        plan = self.plan_add_workers(degree)
        if plan is None:
            raise ABCError(f"cannot bootstrap farm: {degree} node(s) unavailable")
        if secured or (secured is None and self.secure_by_default):
            plan.require_secure_all()
        return self.commit_plan(plan)


class ProducerABC(AutonomicBehaviourController):
    """ABC for a producer stage driven by a rate-controllable source."""

    _OPS = frozenset({ManagerOperation.SET_RATE})

    def __init__(self, source: TaskSource) -> None:
        self.source = source

    def monitor(self) -> Optional[Dict[str, Any]]:
        return {
            "rate": self.source.rate,
            "emitted": self.source.emitted,
            "finished": self.source.finished,
            "max_rate": self.source.max_rate,
        }

    def supported_operations(self) -> FrozenSet[ManagerOperation]:
        return self._OPS

    def execute(self, op: ManagerOperation, data: Any = None) -> bool:
        if op is ManagerOperation.SET_RATE:
            if isinstance(data, Mapping) and "rate" in data:
                target = float(data["rate"])
            elif isinstance(data, (int, float)):
                target = float(data)
            else:
                raise ABCError(f"SET_RATE needs a rate, got {data!r}")
            applied = self.source.set_rate(target)
            # False when the producer is already at its physical limit
            # and was asked to go faster.
            return not (applied < target and applied == self.source.max_rate)
        raise ABCError(f"ProducerABC does not implement {op}")


class StageABC(AutonomicBehaviourController):
    """ABC for a sequential stage: monitoring only (no actuators yet).

    The paper notes (§4.2) that for overloaded sequential stages "we are
    investigating ways to transform the pipeline stage into a farm" —
    that rewrite lives at the skeleton level
    (:func:`repro.skeletons.visitors.farm_out_stage`), not here.
    """

    _OPS: FrozenSet[ManagerOperation] = frozenset()

    def __init__(self, stage: SeqStage) -> None:
        self.stage = stage

    def monitor(self) -> Optional[Dict[str, Any]]:
        snap = self.stage.snapshot()
        return {
            "time": snap.time,
            "arrival_rate": snap.arrival_rate,
            "departure_rate": snap.departure_rate,
            "utilization": snap.utilization,
            "completed": snap.completed,
            "queue_length": snap.queue_length,
        }

    def supported_operations(self) -> FrozenSet[ManagerOperation]:
        return self._OPS

    def execute(self, op: ManagerOperation, data: Any = None) -> bool:
        raise ABCError(f"StageABC does not implement {op}")
