"""GCM component model substrate (Fractal-style membrane architecture).

Components and composites (:mod:`~.component`), interfaces and bindings
(:mod:`~.interfaces`), the standard Lifecycle/Content/Binding
controllers (:mod:`~.controllers`) and the Autonomic Behaviour
Controllers that expose monitoring and actuators to the managers
(:mod:`~.abc_controller`).
"""

from .abc_controller import (
    ABCError,
    AutonomicBehaviourController,
    FarmABC,
    PlannedReconfiguration,
    ProducerABC,
    StageABC,
)
from .component import Component, ComponentError, CompositeComponent, LifecycleState
from .controllers import (
    BindingController,
    ContentController,
    LifecycleController,
    install_standard_controllers,
)
from .interfaces import Binding, Interface, InterfaceError, Role

__all__ = [
    "Component",
    "CompositeComponent",
    "ComponentError",
    "LifecycleState",
    "Interface",
    "Binding",
    "Role",
    "InterfaceError",
    "LifecycleController",
    "ContentController",
    "BindingController",
    "install_standard_controllers",
    "AutonomicBehaviourController",
    "FarmABC",
    "ProducerABC",
    "StageABC",
    "PlannedReconfiguration",
    "ABCError",
]
