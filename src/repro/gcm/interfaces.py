"""Component interfaces and bindings (Fractal/GCM style).

GCM components expose *server* interfaces (services they provide) and
*client* interfaces (services they require); a :class:`Binding` connects
a client interface to a server interface.  Besides functional
interfaces, components expose *non-functional* (membrane) interfaces —
in the paper these include the AM's contract port and the violation
callback port added in §4.2 ("Essentially this involved addition of
callback interfaces to signal violations").

Bindings carry a ``secured`` flag: the security manager's actuator
re-binds communications crossing untrusted domains onto the secure
protocol (§3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["Role", "Interface", "Binding", "InterfaceError"]


class InterfaceError(RuntimeError):
    """Raised for interface/binding misuse."""


class Role(enum.Enum):
    """Whether an interface provides (SERVER) or requires (CLIENT) a service."""

    SERVER = "server"
    CLIENT = "client"


@dataclass
class Interface:
    """One port of a component.

    ``implementation`` is the callable behind a SERVER interface; CLIENT
    interfaces acquire their target via a :class:`Binding`.
    ``functional=False`` marks membrane (controller) interfaces.
    """

    name: str
    role: Role
    owner: Any = None
    implementation: Optional[Callable[..., Any]] = None
    functional: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise InterfaceError("interface needs a name")
        if self.role is Role.SERVER and self.implementation is None:
            raise InterfaceError(f"server interface {self.name!r} needs an implementation")

    def invoke(self, *args: Any, **kwargs: Any) -> Any:
        """Call a SERVER interface's implementation directly."""
        if self.role is not Role.SERVER:
            raise InterfaceError(f"cannot invoke client interface {self.name!r} directly")
        assert self.implementation is not None
        return self.implementation(*args, **kwargs)


@dataclass
class Binding:
    """A client→server wire between two components' interfaces."""

    client: Interface
    server: Interface
    secured: bool = False

    def __post_init__(self) -> None:
        if self.client.role is not Role.CLIENT:
            raise InterfaceError(
                f"binding source {self.client.name!r} must be a CLIENT interface"
            )
        if self.server.role is not Role.SERVER:
            raise InterfaceError(
                f"binding target {self.server.name!r} must be a SERVER interface"
            )

    def call(self, *args: Any, **kwargs: Any) -> Any:
        """Invoke the bound server through this wire."""
        return self.server.invoke(*args, **kwargs)

    def secure(self) -> None:
        """Switch this wire to the secure protocol (idempotent)."""
        self.secured = True
