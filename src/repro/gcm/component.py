"""GCM components: primitive and composite, with a controller membrane.

A GCM/Fractal component is a unit of composition wrapped in a *membrane*
of controllers.  The paper's behavioural skeletons "are implemented as
GCM composite components" whose membrane hosts the autonomic manager
next to the standard Lifecycle, Content and Binding controllers
(Fig. 2, left).  This module gives that architecture:

* :class:`Component` — name, server/client interfaces, membrane
  (controller registry), lifecycle state.
* :class:`CompositeComponent` — additionally holds sub-components and
  internal bindings, managed through its Content/Binding controllers.

Controllers themselves live in :mod:`repro.gcm.controllers`; the ABC
(monitoring + actuators) in :mod:`repro.gcm.abc_controller`.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional

from .interfaces import Binding, Interface, Role

__all__ = ["LifecycleState", "Component", "CompositeComponent", "ComponentError"]


class ComponentError(RuntimeError):
    """Raised for invalid component operations."""


class LifecycleState(enum.Enum):
    STOPPED = "stopped"
    STARTED = "started"


class Component:
    """A primitive GCM component."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ComponentError("component needs a name")
        self.name = name
        self._interfaces: Dict[str, Interface] = {}
        self._controllers: Dict[str, Any] = {}
        self.state = LifecycleState.STOPPED
        self.parent: Optional["CompositeComponent"] = None

    # ------------------------------------------------------------------
    # interfaces
    # ------------------------------------------------------------------
    def add_server_interface(
        self, name: str, implementation: Callable[..., Any], *, functional: bool = True
    ) -> Interface:
        """Expose a service on this component."""
        return self._add_interface(
            Interface(name, Role.SERVER, self, implementation, functional)
        )

    def add_client_interface(self, name: str, *, functional: bool = True) -> Interface:
        """Declare a required service."""
        return self._add_interface(Interface(name, Role.CLIENT, self, None, functional))

    def _add_interface(self, itf: Interface) -> Interface:
        if itf.name in self._interfaces:
            raise ComponentError(f"{self.name}: duplicate interface {itf.name!r}")
        self._interfaces[itf.name] = itf
        return itf

    def interface(self, name: str) -> Interface:
        try:
            return self._interfaces[name]
        except KeyError:
            raise ComponentError(f"{self.name}: no interface {name!r}") from None

    def interfaces(self, role: Optional[Role] = None, functional: Optional[bool] = None) -> List[Interface]:
        out = list(self._interfaces.values())
        if role is not None:
            out = [i for i in out if i.role is role]
        if functional is not None:
            out = [i for i in out if i.functional is functional]
        return out

    # ------------------------------------------------------------------
    # membrane
    # ------------------------------------------------------------------
    def add_controller(self, name: str, controller: Any) -> Any:
        """Install a membrane controller (lifecycle, content, abc, am...)."""
        if name in self._controllers:
            raise ComponentError(f"{self.name}: duplicate controller {name!r}")
        self._controllers[name] = controller
        return controller

    def controller(self, name: str) -> Any:
        try:
            return self._controllers[name]
        except KeyError:
            raise ComponentError(f"{self.name}: no controller {name!r}") from None

    def has_controller(self, name: str) -> bool:
        return name in self._controllers

    @property
    def controllers(self) -> Dict[str, Any]:
        return dict(self._controllers)

    # ------------------------------------------------------------------
    # lifecycle hooks (called by LifecycleController)
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Hook invoked when the component starts."""

    def on_stop(self) -> None:
        """Hook invoked when the component stops."""

    @property
    def started(self) -> bool:
        return self.state is LifecycleState.STARTED

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} {self.state.value}>"


class CompositeComponent(Component):
    """A component containing sub-components and internal bindings."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._children: Dict[str, Component] = {}
        self._bindings: List[Binding] = []

    # content (used by ContentController)
    @property
    def children(self) -> List[Component]:
        return list(self._children.values())

    def child(self, name: str) -> Component:
        try:
            return self._children[name]
        except KeyError:
            raise ComponentError(f"{self.name}: no child {name!r}") from None

    def _add_child(self, comp: Component) -> Component:
        if comp.name in self._children:
            raise ComponentError(f"{self.name}: duplicate child {comp.name!r}")
        if comp.parent is not None:
            raise ComponentError(
                f"{comp.name} already belongs to {comp.parent.name}"
            )
        self._children[comp.name] = comp
        comp.parent = self
        return comp

    def _remove_child(self, comp: Component) -> None:
        if comp.name not in self._children:
            raise ComponentError(f"{self.name}: {comp.name!r} is not a child")
        dangling = [
            b
            for b in self._bindings
            if b.client.owner is comp or b.server.owner is comp
        ]
        if dangling:
            raise ComponentError(
                f"{self.name}: cannot remove {comp.name!r}; {len(dangling)} binding(s) attached"
            )
        del self._children[comp.name]
        comp.parent = None

    # bindings (used by BindingController)
    @property
    def bindings(self) -> List[Binding]:
        return list(self._bindings)

    def _add_binding(self, binding: Binding) -> Binding:
        for b in self._bindings:
            if b.client is binding.client:
                raise ComponentError(
                    f"{self.name}: client interface {binding.client.name!r} already bound"
                )
        self._bindings.append(binding)
        return binding

    def _remove_binding(self, binding: Binding) -> None:
        try:
            self._bindings.remove(binding)
        except ValueError:
            raise ComponentError(f"{self.name}: unknown binding") from None

    def binding_of(self, client_itf: Interface) -> Optional[Binding]:
        """The binding whose client side is ``client_itf`` (None if unbound)."""
        for b in self._bindings:
            if b.client is client_itf:
                return b
        return None
