"""Standard GCM/Fractal membrane controllers.

"The ABC, in turn, uses services from the GCM/Fractal standard
controllers Lifecycle, Content and Binding Controller to implement both
monitoring and actuators." (§4.1)  These are those controllers:

* :class:`LifecycleController` — start/stop, recursive over composites.
* :class:`ContentController` — add/remove sub-components (content may
  only change while the composite is stopped *or* when the caller
  explicitly asks for a live reconfiguration, which is what the farm's
  ``ADD_EXECUTOR`` actuator does).
* :class:`BindingController` — create/remove/secure bindings.
"""

from __future__ import annotations

from typing import List

from .component import Component, ComponentError, CompositeComponent, LifecycleState
from .interfaces import Binding, Interface

__all__ = ["LifecycleController", "ContentController", "BindingController", "install_standard_controllers"]


class LifecycleController:
    """Start/stop a component tree (Fractal's lifecycle-controller)."""

    NAME = "lifecycle-controller"

    def __init__(self, component: Component) -> None:
        self.component = component

    def start(self) -> None:
        """Start the component, children first (so servers are up)."""
        comp = self.component
        if comp.state is LifecycleState.STARTED:
            return
        if isinstance(comp, CompositeComponent):
            for child in comp.children:
                _lifecycle(child).start()
        comp.state = LifecycleState.STARTED
        comp.on_start()

    def stop(self) -> None:
        """Stop the component, parent first (so no new requests flow)."""
        comp = self.component
        if comp.state is LifecycleState.STOPPED:
            return
        comp.state = LifecycleState.STOPPED
        comp.on_stop()
        if isinstance(comp, CompositeComponent):
            for child in comp.children:
                _lifecycle(child).stop()


def _lifecycle(comp: Component) -> LifecycleController:
    if comp.has_controller(LifecycleController.NAME):
        return comp.controller(LifecycleController.NAME)
    return comp.add_controller(LifecycleController.NAME, LifecycleController(comp))


class ContentController:
    """Manage a composite's sub-components (Fractal's content-controller)."""

    NAME = "content-controller"

    def __init__(self, composite: CompositeComponent) -> None:
        if not isinstance(composite, CompositeComponent):
            raise ComponentError("ContentController requires a CompositeComponent")
        self.composite = composite

    def add(self, child: Component, *, live: bool = False) -> Component:
        """Add ``child`` to the composite's content.

        Content changes on a STARTED composite require ``live=True`` —
        the dynamic-reconfiguration path used by the farm manager when
        adding workers at run time.
        """
        self._check_mutable(live)
        self.composite._add_child(child)
        if live and self.composite.state is LifecycleState.STARTED:
            _lifecycle(child).start()
        return child

    def remove(self, child: Component, *, live: bool = False) -> None:
        """Remove ``child`` (it must have no bindings attached)."""
        self._check_mutable(live)
        if child.state is LifecycleState.STARTED:
            if not live:
                raise ComponentError(f"cannot remove started child {child.name!r}")
            _lifecycle(child).stop()
        self.composite._remove_child(child)

    def _check_mutable(self, live: bool) -> None:
        if self.composite.state is LifecycleState.STARTED and not live:
            raise ComponentError(
                f"{self.composite.name}: content change on started composite "
                "requires live=True"
            )


class BindingController:
    """Create and manage bindings inside a composite."""

    NAME = "binding-controller"

    def __init__(self, composite: CompositeComponent) -> None:
        if not isinstance(composite, CompositeComponent):
            raise ComponentError("BindingController requires a CompositeComponent")
        self.composite = composite

    def bind(self, client: Interface, server: Interface, *, secured: bool = False) -> Binding:
        """Wire a client interface to a server interface."""
        binding = Binding(client, server, secured=secured)
        return self.composite._add_binding(binding)

    def unbind(self, binding: Binding) -> None:
        self.composite._remove_binding(binding)

    def secure(self, binding: Binding) -> None:
        """Switch one wire to the secure protocol."""
        binding.secure()

    def secure_all(self) -> int:
        """Secure every binding in the composite; returns count changed."""
        changed = 0
        for b in self.composite.bindings:
            if not b.secured:
                b.secure()
                changed += 1
        return changed

    def unsecured(self) -> List[Binding]:
        """Bindings still on the plain protocol (security-audit helper)."""
        return [b for b in self.composite.bindings if not b.secured]


def install_standard_controllers(comp: Component) -> Component:
    """Install Lifecycle (+ Content/Binding for composites) on ``comp``."""
    _lifecycle(comp)
    if isinstance(comp, CompositeComponent):
        if not comp.has_controller(ContentController.NAME):
            comp.add_controller(ContentController.NAME, ContentController(comp))
        if not comp.has_controller(BindingController.NAME):
            comp.add_controller(BindingController.NAME, BindingController(comp))
    return comp
