"""Rendering experiment results as figure-shaped text reports.

Each ``render_*`` function turns one experiment's result object into the
textual analogue of the corresponding paper figure: aligned event
timelines (Figure 4's first two graphs), rate charts with the contract
stripe (third graph), and step charts of resources used (fourth graph).
The benchmark harnesses print these, so ``pytest benchmarks/
--benchmark-only -s`` regenerates every figure of the paper in text
form.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..sim.trace import ascii_series, ascii_timeline
from .ablation import AblationRow
from .failures import FaultResult
from .fig3 import Fig3Result
from .fig4 import Fig4Result
from .loadspike import LoadSpikeResult
from .multiconcern import MultiConcernResult
from .migration import MigrationResult
from .patterns import PatternsResult
from .split import SplitResult
from .stagefarm import StageFarmResult

__all__ = [
    "render_fig3",
    "render_fig4",
    "render_loadspike",
    "render_multiconcern",
    "render_split",
    "render_ablation",
    "render_faults",
    "render_stagefarm",
    "render_patterns",
    "render_migration",
    "table",
]


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with aligned columns."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines) + "\n"


def _fmt(value: Optional[float], digits: int = 2) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def render_fig3(r: Fig3Result) -> str:
    """Figure 3: farm ramp-up toward the 0.6 task/s contract."""
    out = ["=== FIG3: single AM ensuring a throughput contract (paper Fig. 3) ===", ""]
    out.append(
        f"contract: >= {r.config.target_throughput:g} tasks/s; "
        f"per-worker rate {r.config.worker_rate:g} tasks/s; "
        f"input pressure {r.config.input_rate:g} tasks/s"
    )
    out.append("")
    out.append(
        ascii_series(
            r.throughput_series,
            hlines=[r.config.target_throughput],
            title="farm throughput (tasks/s) — dashed line = contract",
            height=10,
        )
    )
    out.append(
        ascii_series(
            r.workers_series,
            title="parallelism degree (workers)",
            height=8,
        )
    )
    out.append(
        table(
            ["metric", "value"],
            [
                ["time to contract (s)", _fmt(r.time_to_contract, 1)],
                ["final workers", r.final_workers],
                ["final throughput", _fmt(r.final_throughput, 3)],
                ["addWorker actions", len(r.add_worker_times)],
                ["removeWorker actions", r.remove_worker_count],
                ["contract met", r.contract_met],
                ["staircase monotone", r.staircase_is_monotone()],
            ],
        )
    )
    return "\n".join(out)


def render_fig4(r: Fig4Result) -> str:
    """Figure 4: the four aligned graphs of the hierarchical run."""
    cfg = r.config
    out = ["=== FIG4: hierarchical AMs in a three-stage pipeline (paper Fig. 4) ===", ""]
    out.append(
        f"contract: {cfg.contract_low:g}-{cfg.contract_high:g} tasks/s; "
        f"{cfg.total_tasks} tasks; initial producer rate {cfg.initial_rate:g}/s; "
        f"initial farm degree {cfg.initial_degree}"
    )
    out.append("")
    out.append("--- graph 1: AM_A (application/pipeline manager) events ---")
    out.append(ascii_timeline(r.trace.events_of("AM_A"), width=70))
    out.append("--- graph 2: AM_F (farm manager) events ---")
    out.append(ascii_timeline(r.trace.events_of("AM_F"), width=70))
    out.append("--- graph 3: input rate & throughput vs the contract stripe ---")
    out.append(
        ascii_series(
            r.input_rate_series,
            hlines=[cfg.contract_low, cfg.contract_high],
            title="input task rate (tasks/s) — dashes = contract stripe",
            height=9,
        )
    )
    out.append(
        ascii_series(
            r.throughput_series,
            hlines=[cfg.contract_low, cfg.contract_high],
            title="stage-2 throughput (tasks/s) — dashes = contract stripe",
            height=9,
        )
    )
    out.append("--- graph 4: resources (cores) used ---")
    out.append(ascii_series(r.cores_series, title="cores in use", height=7))
    out.append(
        table(
            ["checkpoint (paper §4.2)", "reproduced"],
            [
                ["starve → raiseViol → incRate → addWorker order", r.phase_order_holds()],
                ["cores step 5 → 7 → 9", r.cores_step_values()],
                ["incRate actions", len(r.inc_rate_times)],
                ["decRate actions (warning path)", len(r.dec_rate_times)],
                ["addWorker batches (x2 workers)", len(r.add_worker_times)],
                ["first violation at (s)", _fmt(r.first_violation_time, 1)],
                ["endStream at (s)", _fmt(r.end_stream_time, 1)],
                ["steady throughput in stripe", r.in_stripe_at_end()],
                ["tasks delivered", r.app.delivered],
            ],
        )
    )
    return "\n".join(out)


def render_loadspike(r: LoadSpikeResult) -> str:
    """EXT-LOAD: the §4.2 external-load adaptation claim."""
    out = ["=== EXT-LOAD: adaptation to external load on worker cores (§4.2) ===", ""]
    out.append(
        ascii_series(
            r.trace.series_values("throughput"),
            hlines=[r.config.target_throughput],
            title=f"throughput; load spike at t={r.config.spike_time:g}s",
            height=10,
        )
    )
    out.append(
        ascii_series(
            r.trace.series_values("workers"),
            title="parallelism degree",
            height=7,
        )
    )
    out.append(
        table(
            ["metric", "value"],
            [
                ["workers before spike", r.workers_before],
                ["workers after recovery", r.workers_after],
                ["throughput before", _fmt(r.throughput_before, 3)],
                ["throughput dip", _fmt(r.throughput_dip, 3)],
                ["throughput after", _fmt(r.throughput_after, 3)],
                ["dip visible", r.dip_visible],
                ["adapted (added workers & recovered)", r.adapted],
            ],
        )
    )
    return "\n".join(out)


def render_multiconcern(naive: MultiConcernResult, two_phase: MultiConcernResult) -> str:
    """MC-2PC: naive vs two-phase coordination, side by side."""
    out = ["=== MC-2PC: perf+security coordination (paper §3.2) ===", ""]
    out.append(
        table(
            ["metric", "naive", "two-phase"],
            [
                ["plaintext leaks to untrusted domain", naive.leaks, two_phase.leaks],
                ["exposed workers at end", naive.exposed_at_end, two_phase.exposed_at_end],
                ["perf contract met", naive.perf_contract_met, two_phase.perf_contract_met],
                ["final throughput", _fmt(naive.final_throughput, 3), _fmt(two_phase.final_throughput, 3)],
                ["untrusted-domain workers", naive.untrusted_workers, two_phase.untrusted_workers],
                ["secured workers", naive.secured_workers, two_phase.secured_workers],
                ["intents amended pre-commit", naive.amended_intents, two_phase.amended_intents],
                ["reactive secure actions (late!)", naive.reactive_secure_actions, two_phase.reactive_secure_actions],
            ],
        )
    )
    out.append(
        "expected shape: both modes end secure and in perf-contract; only the\n"
        "naive mode leaks plaintext during the window between worker\n"
        "instantiation and the security manager's next control tick.\n"
    )
    return "\n".join(out)


def render_split(r: SplitResult, soundness: Tuple[int, int]) -> str:
    """SPLIT: P_spl heuristics vs uniform and optimal allocations."""
    out = ["=== SPLIT: contract-splitting heuristics (paper §3.1, P_spl) ===", ""]
    checked, held = soundness
    out.append(
        f"throughput-split soundness: stage SLAs met => pipeline SLA met in "
        f"{held}/{checked} random pipelines\n"
    )
    rows = [
        [
            "×".join(f"{w:g}" for w in c.works),
            c.budget,
            c.proportional,
            c.uniform,
            c.optimal,
            _fmt(c.thr_proportional, 3),
            _fmt(c.thr_uniform, 3),
            _fmt(c.thr_optimal, 3),
            _fmt(c.proportional_efficiency, 3),
        ]
        for c in r.cases[:12]
    ]
    out.append(
        table(
            ["stage works", "budget", "prop", "unif", "opt", "thr(prop)", "thr(unif)", "thr(opt)", "eff"],
            rows,
        )
    )
    out.append(
        table(
            ["aggregate", "value"],
            [
                ["cases", len(r.cases)],
                ["mean proportional efficiency vs optimal", _fmt(r.mean_efficiency, 3)],
                ["min proportional efficiency", _fmt(r.min_efficiency, 3)],
                ["fraction where proportional >= uniform", _fmt(r.beats_or_ties_uniform_fraction, 3)],
            ],
        )
    )
    return "\n".join(out)


def render_faults(r: FaultResult) -> str:
    """FAULT: worker crashes, task recovery, capacity replacement."""
    out = ["=== FAULT: autonomic reaction to worker crashes (concern of §2) ===", ""]
    out.append(
        ascii_series(
            r.trace.series_values("throughput"),
            hlines=[r.config.target_throughput],
            title=f"throughput; crashes at t={list(r.config.crash_times)}",
            height=10,
        )
    )
    out.append(
        ascii_series(r.trace.series_values("workers"), title="parallelism degree", height=7)
    )
    out.append(
        table(
            ["metric", "value"],
            [
                ["worker crashes injected", r.crashes],
                ["tasks recovered from crashed workers", r.recovered_tasks],
                ["tasks completed / submitted", f"{r.completed} / {r.config.total_tasks}"],
                ["no task lost", r.no_task_lost],
                ["replacement workers recruited", r.replacements],
                ["throughput after recovery (live)", _fmt(r.live_throughput_after_recovery, 3)],
                ["capacity recovered", r.capacity_recovered],
            ],
        )
    )
    return "\n".join(out)


def render_stagefarm(r: StageFarmResult) -> str:
    """STAGE-FARM: the §4.2 stage-to-farm transformation."""
    out = ["=== STAGE-FARM: transforming a bottleneck stage into a farm (§4.2) ===", ""]
    out.append(
        ascii_series(
            r.trace.series_values("pipeline_throughput"),
            hlines=[r.config.contract_low, r.config.contract_high],
            title=(
                f"pipeline throughput; consumer core loaded at "
                f"t={r.config.spike_time:g}s — dashes = contract stripe"
            ),
            height=10,
        )
    )
    out.append(
        table(
            ["metric", "value"],
            [
                ["throughput before spike", _fmt(r.throughput_before, 3)],
                ["dip after spike", _fmt(r.throughput_dip, 3)],
                ["stage promoted to farm", r.promoted],
                ["promotion at (s)", _fmt(r.promotion_time, 1)],
                ["stage-farm workers at end", r.stage_farm_workers],
                ["throughput after promotion", _fmt(r.throughput_after, 3)],
                ["contract recovered", r.recovered],
            ],
        )
    )
    return "\n".join(out)


def render_patterns(r: PatternsResult) -> str:
    """PATTERNS: farm vs data-parallel map trade-off table."""
    out = ["=== PATTERNS: task farm vs data-parallel map (§3 variants) ===", ""]
    out.append(
        f"per-task work {r.task_work:g}s; throughput from a saturated run, "
        "latency from an unloaded run\n"
    )
    rows = []
    for d in r.degrees():
        farm = r.point("farm", d)
        dmap = r.point("map", d)
        rows.append(
            [
                d,
                _fmt(farm.throughput, 3),
                _fmt(dmap.throughput, 3),
                _fmt(farm.mean_latency, 2),
                _fmt(dmap.mean_latency, 2),
                "map" if r.map_wins_latency(d) else "farm",
            ]
        )
    out.append(
        table(
            ["degree", "thr(farm)", "thr(map)", "lat(farm)", "lat(map)", "latency winner"],
            rows,
        )
    )
    out.append(
        "expected shape: the farm holds the throughput edge (no per-task\n"
        "scatter/gather) while the map's unloaded latency is ~work/degree.\n"
    )
    return "\n".join(out)


def render_migration(r: MigrationResult) -> str:
    """MIGRATE: migration-first vs growth recovery on the load spike."""
    out = ["=== MIGRATE: migration vs growth as the recovery policy (§3) ===", ""]
    out.append(
        f"all {r.config.initial_degree} initial worker nodes lose "
        f"{r.config.spike_load:.0%} of their speed at t={r.config.spike_time:g}s; "
        "fresh nodes are available in the pool\n"
    )
    out.append(
        table(
            ["metric", "standard (grow)", "migration-first"],
            [
                ["final workers", r.standard.final_workers, r.migration_first.final_workers],
                ["nodes allocated", r.standard.nodes_allocated, r.migration_first.nodes_allocated],
                ["final throughput", _fmt(r.standard.final_throughput, 3), _fmt(r.migration_first.final_throughput, 3)],
                ["migrations", r.standard.migrations, r.migration_first.migrations],
                ["worker additions", r.standard.additions, r.migration_first.additions],
                ["contract recovered", r.standard.recovered, r.migration_first.recovered],
            ],
        )
    )
    out.append(
        "expected shape: both policies restore the contract; migrating the\n"
        "slow workers onto fresh nodes does it with far fewer resources.\n"
    )
    return "\n".join(out)


def render_ablation(rows: List[AblationRow], title: str) -> str:
    """ABL-RULES: one sweep's table."""
    out = [f"=== ABL-RULES: {title} ===", ""]
    out.append(
        table(
            ["value", "time-to-contract (s)", "final workers", "final thr", "adds", "removes", "reconfigs"],
            [
                [
                    f"{r.value:g}",
                    _fmt(r.time_to_contract, 1),
                    r.final_workers,
                    _fmt(r.final_throughput, 3),
                    r.adds,
                    r.removes,
                    r.reconfigurations,
                ]
                for r in rows
            ],
        )
    )
    return "\n".join(out)
