"""Experiment FIG4 — hierarchical AMs in a three-stage pipeline (Figure 4).

The paper's scenario, phase by phase (§4.2):

1. The user hands AM_A a 0.3–0.7 tasks/s throughput contract; AM_A
   forwards it to AM_P / AM_F / AM_C; AM_F's workers get best-effort.
2. **Starvation** — the producer emits too slowly; AM_F sees contrLow +
   notEnough, has no useful local action, raises violations and goes
   passive; AM_A responds with incRate contracts to AM_P ("the first
   stage produces tasks more and more frequently").
3. **Growth** — once input pressure suffices but throughput is still
   low, AM_F adds two workers (addWorker), with a monitoring blackout
   during reconfiguration; if the contract is still unmet it adds two
   more.
4. **Overshoot** — the rate increases overshoot the stripe; AM_F raises
   a tooMuchTasks *warning* and AM_A decRates the producer slightly.
5. **Drain** — the stream ends (endStream); AM_A stops reacting to
   notEnough; AM_F locally rebalances queued tasks.

The regenerated figure is four aligned traces: AM_A events, AM_F events,
rates vs the contract stripe, and cores in use (5 → 7 → 9).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.behavioural import PipelineApp, build_three_stage_pipeline
from ..core.contracts import ThroughputRangeContract
from ..core.events import Events
from ..obs.telemetry import Telemetry
from ..sim.engine import Simulator
from ..sim.resources import ResourceManager, make_cluster
from ..sim.trace import TraceRecorder
from ..sim.workload import UniformWork

__all__ = ["Fig4Config", "Fig4Result", "run_fig4", "main"]


@dataclass
class Fig4Config:
    """Parameters of the FIG4 scenario."""

    contract_low: float = 0.3
    contract_high: float = 0.7
    initial_rate: float = 0.2        # below the stripe: phase-2 starvation
    max_rate: float = 1.5
    worker_work_lo: float = 9.0      # per-task work (uniform band): one
    worker_work_hi: float = 15.0     # worker ≈ 1/12 tasks/s on average
    total_tasks: int = 300
    initial_degree: int = 3          # + producer + consumer = 5 cores
    pool_size: int = 24
    duration: float = 900.0
    control_period: float = 10.0
    worker_setup_time: float = 10.0
    rate_window: float = 30.0
    inc_factor: float = 1.4
    dec_factor: float = 0.92
    seed: int = 42
    #: route AM_F's worker additions through a two-phase GeneralManager.
    #: Off by default: the GM adds its own intentReview trace marks, and
    #: the regenerated Figure 4 artefacts must stay byte-identical.
    with_coordinator: bool = False

    @property
    def mean_worker_work(self) -> float:
        return (self.worker_work_lo + self.worker_work_hi) / 2.0


@dataclass
class Fig4Result:
    """Outcome of one FIG4 run with the figure's four traces."""

    config: Fig4Config
    trace: TraceRecorder
    app: PipelineApp
    cores_series: List[Tuple[float, float]] = field(default_factory=list)
    input_rate_series: List[Tuple[float, float]] = field(default_factory=list)
    throughput_series: List[Tuple[float, float]] = field(default_factory=list)

    # -- event accessors (the first two graphs) -------------------------
    def am_a_events(self) -> List[str]:
        return self.trace.event_names("AM_A")

    def am_f_events(self) -> List[str]:
        return self.trace.event_names("AM_F")

    @property
    def inc_rate_times(self) -> List[float]:
        return [e.time for e in self.trace.events_of("AM_A", Events.INC_RATE)]

    @property
    def dec_rate_times(self) -> List[float]:
        return [e.time for e in self.trace.events_of("AM_A", Events.DEC_RATE)]

    @property
    def add_worker_times(self) -> List[float]:
        return [e.time for e in self.trace.events_of("AM_F", Events.ADD_WORKER)]

    @property
    def first_violation_time(self) -> Optional[float]:
        ev = self.trace.first(Events.RAISE_VIOL, actor="AM_F")
        return ev.time if ev else None

    @property
    def end_stream_time(self) -> Optional[float]:
        ev = self.trace.first(Events.END_STREAM, actor="AM_A")
        return ev.time if ev else None

    # -- figure-level checks ---------------------------------------------
    def phase_order_holds(self) -> bool:
        """The paper's causal chain: starve → raiseViol → incRate → addWorker."""
        return self.trace.assert_order(
            [Events.NOT_ENOUGH, Events.RAISE_VIOL]
        ) and self.trace.assert_order([Events.RAISE_VIOL, Events.INC_RATE]) and (
            not self.add_worker_times
            or min(self.add_worker_times) > min(self.inc_rate_times or [float("inf")])
        )

    def cores_step_values(self) -> List[int]:
        """Distinct cores-in-use plateau values, in order (5 → 7 → 9)."""
        steps: List[int] = []
        for _, v in self.cores_series:
            iv = int(v)
            if not steps or steps[-1] != iv:
                steps.append(iv)
        return steps

    def final_throughput(self) -> Optional[float]:
        """Delivery rate while the stream was still live (steady state)."""
        end = self.end_stream_time
        pts = [
            (t, v)
            for t, v in self.throughput_series
            if end is None or t <= end
        ]
        return pts[-1][1] if pts else None

    def in_stripe_at_end(self) -> bool:
        v = self.final_throughput()
        if v is None:
            return False
        return self.config.contract_low <= v <= self.config.contract_high * 1.1


def run_fig4(
    config: Optional[Fig4Config] = None, *, telemetry: Optional[Telemetry] = None
) -> Fig4Result:
    """Run the FIG4 scenario and return its traces and summary.

    ``telemetry`` (optional) attaches a :class:`repro.obs.Telemetry`
    whose clock follows the simulation; every manager MAPE phase, rule
    evaluation, violation propagation and (with
    ``config.with_coordinator``) intent round becomes a span.  Attaching
    it never changes the event sequence — the no-op invariant is
    property-tested.
    """
    cfg = config or Fig4Config()
    sim = Simulator(telemetry=telemetry)
    trace = TraceRecorder()
    if telemetry is not None:
        from ..obs.clock import SimClock

        telemetry.clock = SimClock(sim)
        telemetry.trace = trace
    rm = ResourceManager(make_cluster(cfg.pool_size))

    app = build_three_stage_pipeline(
        sim,
        rm,
        work_model=UniformWork(cfg.worker_work_lo, cfg.worker_work_hi, seed=cfg.seed),
        worker_work=cfg.mean_worker_work,
        initial_rate=cfg.initial_rate,
        max_rate=cfg.max_rate,
        total_tasks=cfg.total_tasks,
        initial_degree=cfg.initial_degree,
        control_period=cfg.control_period,
        worker_setup_time=cfg.worker_setup_time,
        rate_window=cfg.rate_window,
        inc_factor=cfg.inc_factor,
        dec_factor=cfg.dec_factor,
        trace=trace,
        telemetry=telemetry,
    )
    if cfg.with_coordinator:
        from ..core.multiconcern import CoordinationMode, GeneralManager

        gm = GeneralManager(
            mode=CoordinationMode.TWO_PHASE, trace=trace, telemetry=telemetry
        )
        gm.register(app.am_f)
        app.gm = gm  # type: ignore[attr-defined]
    app.assign_contract(ThroughputRangeContract(cfg.contract_low, cfg.contract_high))

    def sample() -> None:
        snap = app.farm.force_snapshot()
        trace.sample("cores", sim.now, app.cores_in_use())
        trace.sample("input_rate", sim.now, snap.arrival_rate)
        trace.sample("throughput", sim.now, snap.departure_rate)
        trace.sample("producer_rate", sim.now, app.source.rate)

    sim.periodic(cfg.control_period / 2.0, sample, name="sampler")
    sim.run(until=cfg.duration)

    return Fig4Result(
        config=cfg,
        trace=trace,
        app=app,
        cores_series=trace.series_values("cores"),
        input_rate_series=trace.series_values("input_rate"),
        throughput_series=trace.series_values("throughput"),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: run FIG4, print the report, optionally dump the decision audit.

    ``--backend`` selects the substrate the Figure 5 rules drive:
    ``sim`` (default, the deterministic DES reproducing the paper's
    figure), ``thread`` (live threads), ``process`` (supervised OS
    processes with SIGKILL fault injection and task replay) or ``dist``
    (TCP-connected worker processes behind an asyncio coordinator, with
    connection-severing fault injection).
    ``--trace-out PATH`` attaches telemetry and writes the full decision
    audit — trace marks, MAPE/rule/violation/intent spans, monitoring
    series — as JSON lines.  ``--metrics-out PATH`` additionally dumps
    the metrics registry in Prometheus text format.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fig4", description=main.__doc__
    )
    parser.add_argument(
        "--backend", choices=("sim", "thread", "process", "dist"), default="sim",
        help="substrate under the rules: deterministic sim (default), "
        "live threads, crash-supervised OS processes, or TCP-connected "
        "distributed workers",
    )
    parser.add_argument(
        "--no-crash", action="store_true",
        help="process/dist backends: skip the fault injection",
    )
    parser.add_argument(
        "--kill-coordinator", action="store_true",
        help="live backends: run under journaled supervision and crash "
        "the whole coordinator stack mid-feed — the supervisor replays "
        "the journal, promotes a new incarnation (the dist standby) and "
        "redispatches the in-flight tasks with zero loss",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="live backends: run the farm-of-farms variant with N shards "
        "under one parent manager (skewed feed -> budget rebalancing)",
    )
    parser.add_argument(
        "--tenants", type=int, default=0, metavar="M",
        help="with --shards: multiplex M tenants with per-tenant rate "
        "SLAs through the admission gate and fair-share scheduler",
    )
    parser.add_argument(
        "--with-security", action="store_true",
        help="live backends: run the §3.2 multi-concern story — growth "
        "routes through a live GM + security manager, every new worker "
        "is quarantined until its channel is secured",
    )
    parser.add_argument(
        "--coordination", choices=("two-phase", "naive"), default="two-phase",
        help="with --with-security: intent protocol (default) or the "
        "naive ablation that measures the insecure-dispatch leak window",
    )
    parser.add_argument(
        "--serve-telemetry", action="store_true",
        help="live backends: serve /metrics, /traces, /trace/<id>, "
        "/healthz, /query, /slo and /stream over HTTP for the duration "
        "of the run (watch it live with python -m repro.obs.top)",
    )
    parser.add_argument(
        "--no-slo", action="store_true",
        help="live backends: skip deriving SLO burn-rate objectives "
        "from the contract (on by default when telemetry is enabled)",
    )
    parser.add_argument(
        "--telemetry-port", type=int, default=0, metavar="PORT",
        help="with --serve-telemetry: bind this port (default: pick a free one)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the decision audit (spans + events + series) as JSONL",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics registry as Prometheus text",
    )
    parser.add_argument(
        "--duration", type=float, default=None, help="override simulated duration"
    )
    parser.add_argument(
        "--with-coordinator", action="store_true",
        help="route AM_F worker additions through a two-phase GM",
    )
    args = parser.parse_args(argv)

    if args.tenants and not args.shards:
        parser.error("--tenants needs --shards")
    if args.kill_coordinator:
        if args.backend == "sim":
            parser.error("--kill-coordinator needs a live backend (thread/process/dist)")
        if args.with_security:
            parser.error("--kill-coordinator and --with-security are mutually exclusive")
        if args.shards:
            parser.error("--kill-coordinator does not combine with --shards")
    if args.shards:
        if args.backend == "sim":
            parser.error("--shards needs a live backend (thread/process/dist)")
        from .fig4_live import (
            Fig4ShardedConfig,
            render_fig4_sharded,
            run_fig4_sharded,
        )

        sharded_telemetry = None
        if args.trace_out or args.metrics_out:
            sharded_telemetry = Telemetry()
        sharded_cfg = Fig4ShardedConfig(
            backend=args.backend, shards=args.shards, tenants=args.tenants
        )
        print(render_fig4_sharded(
            run_fig4_sharded(sharded_cfg, telemetry=sharded_telemetry)
        ))
        if args.trace_out:
            from ..obs.export import write_trace_jsonl

            n = write_trace_jsonl(args.trace_out, sharded_telemetry)
            print(f"wrote {n} trace records to {args.trace_out}")
        if args.metrics_out:
            from ..obs.export import prometheus_text

            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(prometheus_text(sharded_telemetry.metrics))
            print(f"wrote metrics to {args.metrics_out}")
        return 0
    if args.backend != "sim":
        from .fig4_live import Fig4LiveConfig, render_fig4_live, run_fig4_live

        live_cfg = Fig4LiveConfig(
            backend=args.backend,
            inject_crash=not args.no_crash,
            with_security=args.with_security,
            coordination=args.coordination,
            serve_telemetry=args.serve_telemetry,
            telemetry_port=args.telemetry_port,
            kill_coordinator=args.kill_coordinator,
            with_slo=not args.no_slo,
        )
        live_telemetry = None
        if args.trace_out or args.metrics_out:
            live_telemetry = Telemetry()
        print(render_fig4_live(run_fig4_live(live_cfg, telemetry=live_telemetry)))
        if args.trace_out:
            from ..obs.export import write_trace_jsonl

            n = write_trace_jsonl(args.trace_out, live_telemetry)
            print(f"wrote {n} trace records to {args.trace_out}")
        if args.metrics_out:
            from ..obs.export import prometheus_text

            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(prometheus_text(live_telemetry.metrics))
            print(f"wrote metrics to {args.metrics_out}")
        return 0
    if args.with_security:
        parser.error("--with-security needs a live backend (thread/process/dist)")
    if args.serve_telemetry:
        parser.error("--serve-telemetry needs a live backend (thread/process/dist)")

    cfg = Fig4Config(with_coordinator=args.with_coordinator)
    if args.duration is not None:
        cfg.duration = args.duration

    telemetry = None
    if args.trace_out or args.metrics_out:
        telemetry = Telemetry()

    result = run_fig4(cfg, telemetry=telemetry)

    from .report import render_fig4

    print(render_fig4(result))

    if args.trace_out:
        from ..obs.export import write_trace_jsonl

        n = write_trace_jsonl(
            args.trace_out, telemetry, result.trace, include_series=True
        )
        print(f"wrote {n} trace records to {args.trace_out}")
    if args.metrics_out:
        from ..obs.export import prometheus_text

        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(telemetry.metrics))
        print(f"wrote metrics to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
