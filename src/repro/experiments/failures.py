"""Experiment FAULT — autonomic reaction to worker crashes.

Fault tolerance is one of the paper's canonical non-functional concerns
(§2 lists it alongside performance and security; the evaluation does not
measure it).  The behavioural-skeleton machinery handles it for free:

* the **mechanism** recovers the *tasks* — a crashed worker's in-flight
  task is replayed and its queue migrates to survivors (at-least-once);
* the **manager** recovers the *capacity* — the lost worker drops the
  measured departure rate below the contract, so Figure 5's
  ``CheckRateLow`` fires and a replacement is recruited; no
  fault-specific rule is needed.

The experiment crashes ``n_crashes`` workers at fixed times and checks
that (a) no task is ever lost, and (b) throughput returns to contract
after each crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.behavioural import FarmBS, build_farm_bs
from ..core.contracts import MinThroughputContract
from ..sim.engine import Simulator
from ..sim.resources import ResourceManager, make_cluster
from ..sim.trace import TraceRecorder
from ..sim.workload import ConstantWork, TaskSource

__all__ = ["FaultConfig", "FaultResult", "run_faults"]


@dataclass
class FaultConfig:
    target_throughput: float = 0.6
    worker_rate: float = 0.2
    input_rate: float = 0.7
    initial_degree: int = 4
    pool_size: int = 20
    crash_times: Tuple[float, ...] = (150.0, 300.0)
    crashes_per_event: int = 2   # deep enough to breach the contract even
                                 # after warm-up over-provisioning
    total_tasks: int = 300
    duration: float = 900.0
    control_period: float = 10.0
    worker_setup_time: float = 5.0
    rate_window: float = 20.0

    @property
    def worker_work(self) -> float:
        return 1.0 / self.worker_rate


@dataclass
class FaultResult:
    config: FaultConfig
    trace: TraceRecorder
    bs: FarmBS
    crashes: int
    recovered_tasks: int
    completed: int
    final_throughput: float
    replacements: int
    live_throughput_after_recovery: float = 0.0

    @property
    def no_task_lost(self) -> bool:
        return self.completed == self.config.total_tasks

    @property
    def capacity_recovered(self) -> bool:
        """The manager re-recruited and restored contract-level service.

        Replacements may be fewer than crashes: the manager restores the
        *contract*, not the headcount — warm-up over-provisioning absorbs
        part of the loss.
        """
        return self.replacements > 0 and self.live_throughput_after_recovery >= (
            self.config.target_throughput * 0.9
        )


def run_faults(config: Optional[FaultConfig] = None) -> FaultResult:
    cfg = config or FaultConfig()
    sim = Simulator()
    trace = TraceRecorder()
    rm = ResourceManager(make_cluster(cfg.pool_size))

    bs = build_farm_bs(
        sim,
        rm,
        name="farm",
        worker_work=cfg.worker_work,
        initial_degree=cfg.initial_degree,
        trace=trace,
        control_period=cfg.control_period,
        worker_setup_time=cfg.worker_setup_time,
        rate_window=cfg.rate_window,
        constants_kwargs={"add_burst": 1, "max_workers": cfg.pool_size},
        spawn_worker_managers=False,
    )
    TaskSource(
        sim,
        bs.farm.input,
        rate=cfg.input_rate,
        work_model=ConstantWork(cfg.worker_work),
        total=cfg.total_tasks,
        name="stream",
        on_end_of_stream=bs.farm.notify_end_of_stream,
    )
    bs.assign_contract(MinThroughputContract(cfg.target_throughput))

    recovered = [0]

    def crash() -> None:
        for _ in range(cfg.crashes_per_event):
            live = [w for w in bs.farm.workers if w.active]
            if not live:
                return
            victim = live[0]  # the longest-serving worker
            n = bs.farm.fail_worker(victim)
            recovered[0] += n
            trace.mark(sim.now, "chaos", "workerCrash", worker=victim.name, recovered=n)

    for t in cfg.crash_times:
        sim.schedule_at(t, crash)

    def sample() -> None:
        snap = bs.farm.force_snapshot()
        trace.sample("throughput", sim.now, snap.departure_rate)
        trace.sample("workers", sim.now, snap.num_workers)

    sim.periodic(cfg.control_period / 2.0, sample, name="sampler")
    sim.run(until=cfg.duration)

    snap = bs.farm.force_snapshot()
    crash_times = [e.time for e in trace.events_of("chaos", "workerCrash")]
    post_crash_adds = [
        e.time
        for e in trace.events_of(name="addWorker")
        if crash_times and e.time > min(crash_times)
    ]
    # throughput after the last crash's recovery but before the stream
    # drained (≈ total_tasks / input_rate)
    stream_end = cfg.total_tasks / cfg.input_rate
    window_lo = (max(crash_times) if crash_times else 0.0) + 60.0
    live_points = [
        v
        for t, v in trace.series_values("throughput")
        if window_lo <= t <= stream_end
    ]
    live_recovered = max(live_points) if live_points else 0.0

    return FaultResult(
        config=cfg,
        trace=trace,
        bs=bs,
        crashes=bs.farm.failures,
        recovered_tasks=recovered[0],
        completed=bs.farm.completed,
        final_throughput=snap.departure_rate,
        replacements=len(post_crash_adds),
        live_throughput_after_recovery=live_recovered,
    )
