"""Experiment MC-2PC — performance/security conflict and the intent protocol.

Section 3.2's running example: the farm must grow to re-establish
``c_perf``, but "if the recruited resource belongs to domain
untrusted_ip_domain_A then a violation of c_sec will arise as a result
of trying to re-establish c_perf" — unless the two-phase protocol runs:
"i) AM_perf should express the intent to add a new node, ii) AM_sec
could react by prompting securing of communications and iii) AM_perf
may then instantiate the new secure worker."

Set-up: a resource pool whose trusted nodes are exhausted by the initial
deployment, so every growth step lands in the untrusted domain.  We run
the identical scenario under the two coordination modes and compare:

* ``naive``  — AM_perf commits immediately; AM_sec only closes the hole
  at its next control tick → a positive number of **leaked** plaintext
  messages (the audit log counts every one);
* ``two-phase`` — AM_sec amends the plan before commit → **zero** leaks,
  at the cost of the secured channel's throughput overhead.

Both modes must end with the performance contract satisfied and all
untrusted-domain channels secured; only the leak window differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.behavioural import FarmBS, build_farm_bs
from ..core.contracts import MinThroughputContract, SecurityContract
from ..core.multiconcern import CoordinationMode, GeneralManager
from ..security.domains import SecurityPolicy
from ..security.manager import SecurityABC, SecurityManager
from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.resources import Domain, Node, ResourceManager
from ..sim.trace import TraceRecorder
from ..sim.workload import ConstantWork, TaskSource

__all__ = ["MultiConcernConfig", "MultiConcernResult", "run_multiconcern"]


@dataclass
class MultiConcernConfig:
    mode: str = "two-phase"          # "two-phase" | "naive"
    target_throughput: float = 0.6
    worker_rate: float = 0.2
    input_rate: float = 1.0
    trusted_nodes: int = 2           # capacity 0.4 t/s: growth forced offsite
    untrusted_nodes: int = 10
    duration: float = 600.0
    perf_control_period: float = 10.0
    sec_control_period: float = 15.0  # slower than perf: the naive window
    worker_setup_time: float = 5.0
    rate_window: float = 20.0
    secure_factor: float = 1.3

    @property
    def worker_work(self) -> float:
        return 1.0 / self.worker_rate


@dataclass
class MultiConcernResult:
    config: MultiConcernConfig
    trace: TraceRecorder
    bs: FarmBS
    network: Network
    gm: GeneralManager
    sec_manager: SecurityManager
    final_throughput: float
    final_workers: int
    leaks: int
    exposed_at_end: int
    untrusted_workers: int
    secured_workers: int
    amended_intents: int
    reactive_secure_actions: int

    @property
    def perf_contract_met(self) -> bool:
        return self.final_throughput >= self.config.target_throughput * 0.9

    @property
    def security_contract_met_at_end(self) -> bool:
        return self.exposed_at_end == 0

    @property
    def leak_free(self) -> bool:
        return self.leaks == 0


def run_multiconcern(config: Optional[MultiConcernConfig] = None) -> MultiConcernResult:
    cfg = config or MultiConcernConfig()
    mode = (
        CoordinationMode.TWO_PHASE if cfg.mode == "two-phase" else CoordinationMode.NAIVE
    )
    sim = Simulator()
    trace = TraceRecorder()
    network = Network(secure_factor=cfg.secure_factor)

    lan = Domain("lan", trusted=True)
    wan = Domain("untrusted_ip_domain_A", trusted=False)
    nodes = [Node(f"t{i}", domain=lan) for i in range(cfg.trusted_nodes)] + [
        Node(f"u{i}", domain=wan) for i in range(cfg.untrusted_nodes)
    ]
    rm = ResourceManager(nodes)

    bs = build_farm_bs(
        sim,
        rm,
        name="farm",
        worker_work=cfg.worker_work,
        initial_degree=cfg.trusted_nodes,  # fill the trusted capacity
        trace=trace,
        network=network,
        control_period=cfg.perf_control_period,
        worker_setup_time=cfg.worker_setup_time,
        rate_window=cfg.rate_window,
        constants_kwargs={"add_burst": 1, "max_workers": len(nodes)},
        spawn_worker_managers=False,
        emitter_node=Node("frontend", domain=lan),
    )

    policy = SecurityPolicy()
    sec_abc = SecurityABC([bs.abc], network, policy)
    sec_manager = SecurityManager(
        "AM_sec",
        sim,
        sec_abc,
        trace=trace,
        control_period=cfg.sec_control_period,
    )
    sec_manager.assign_contract(SecurityContract())

    gm = GeneralManager(mode=mode, trace=trace)
    gm.register(sec_manager)            # boolean concern: priority 10
    gm.register(bs.manager, priority=0)

    TaskSource(
        sim,
        bs.farm.input,
        rate=cfg.input_rate,
        work_model=ConstantWork(cfg.worker_work),
        name="stream",
    )
    bs.assign_contract(MinThroughputContract(cfg.target_throughput))

    def sample() -> None:
        snap = bs.farm.force_snapshot()
        trace.sample("throughput", sim.now, snap.departure_rate)
        trace.sample("workers", sim.now, snap.num_workers)
        trace.sample("leaks", sim.now, network.leak_count)

    sim.periodic(cfg.perf_control_period / 2.0, sample, name="sampler")
    sim.run(until=cfg.duration)

    snap = bs.farm.force_snapshot()
    live_workers = [w for w in bs.farm.workers if not w._stopped]
    untrusted_workers = [w for w in live_workers if not w.node.trusted]

    return MultiConcernResult(
        config=cfg,
        trace=trace,
        bs=bs,
        network=network,
        gm=gm,
        sec_manager=sec_manager,
        final_throughput=snap.departure_rate,
        final_workers=snap.num_workers,
        leaks=network.leak_count,
        exposed_at_end=len(sec_abc.exposed_workers()),
        untrusted_workers=len(untrusted_workers),
        secured_workers=sum(1 for w in live_workers if w.secured),
        amended_intents=sum(r.amendments for r in gm.intents),
        reactive_secure_actions=sec_abc.secured_actions,
    )
