"""Experiment SPLIT — soundness of the P_spl contract-splitting heuristics.

Section 3.1 argues there is no general way to split an SLA into
sub-SLAs, but that pattern-specific heuristics work: a pipeline's
throughput contract can be forwarded to each stage (slowest-stage
model), and a parallelism-degree budget can be split proportionally to
stage weights.  This experiment *quantifies* the heuristics' soundness
under the analytical cost model:

* **throughput split** — if every stage, after farming to its split
  degree, meets the (identical) stage sub-contract, does the whole
  pipeline meet the parent contract?  (Always, by the slowest-stage
  model — verified over many random trees.)
* **degree split** — how much throughput does proportional splitting
  achieve versus (a) an exhaustive optimal allocation of the same
  budget, and (b) a uniform split?  The proportional heuristic should
  sit close to optimal and dominate uniform on skewed pipelines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..core.contracts import ParallelismDegreeContract, split_contract
from ..skeletons.ast import Farm, Pipe, Seq
from ..skeletons.cost import throughput

__all__ = ["SplitCase", "SplitResult", "run_split", "optimal_allocation", "allocation_throughput"]


@dataclass
class SplitCase:
    """One random pipeline instance and its three allocations."""

    works: Tuple[float, ...]
    budget: int
    proportional: Tuple[int, ...]
    uniform: Tuple[int, ...]
    optimal: Tuple[int, ...]
    thr_proportional: float
    thr_uniform: float
    thr_optimal: float

    @property
    def proportional_efficiency(self) -> float:
        """Proportional throughput as a fraction of optimal."""
        if self.thr_optimal == 0:
            return 1.0
        return self.thr_proportional / self.thr_optimal


@dataclass
class SplitResult:
    cases: List[SplitCase] = field(default_factory=list)

    @property
    def mean_efficiency(self) -> float:
        if not self.cases:
            return 0.0
        return sum(c.proportional_efficiency for c in self.cases) / len(self.cases)

    @property
    def min_efficiency(self) -> float:
        return min((c.proportional_efficiency for c in self.cases), default=0.0)

    @property
    def beats_or_ties_uniform_fraction(self) -> float:
        if not self.cases:
            return 0.0
        wins = sum(1 for c in self.cases if c.thr_proportional >= c.thr_uniform - 1e-9)
        return wins / len(self.cases)


def allocation_throughput(works: Sequence[float], degrees: Sequence[int]) -> float:
    """Pipeline throughput when stage i is farmed to degrees[i]."""
    pipe = Pipe(*[Farm(Seq(w), degree=max(1, d)) for w, d in zip(works, degrees)])
    return throughput(pipe)


def optimal_allocation(works: Sequence[float], budget: int) -> Tuple[int, ...]:
    """Exhaustive best allocation of ``budget`` workers over stages.

    Greedy water-filling is optimal for this max-min problem, but we
    verify with a true greedy-by-bottleneck loop: repeatedly give one
    worker to the current slowest stage.
    """
    n = len(works)
    degrees = [1] * n
    for _ in range(budget - n):
        stage_times = [w / d for w, d in zip(works, degrees)]
        slowest = max(range(n), key=lambda i: stage_times[i])
        degrees[slowest] += 1
    return tuple(degrees)


def uniform_allocation(n_stages: int, budget: int) -> Tuple[int, ...]:
    base = budget // n_stages
    extra = budget % n_stages
    return tuple(base + (1 if i < extra else 0) for i in range(n_stages))


def run_split(
    *,
    n_cases: int = 50,
    max_stages: int = 5,
    max_budget: int = 24,
    seed: int = 7,
) -> SplitResult:
    """Monte-Carlo comparison of the degree-splitting heuristics."""
    rng = random.Random(seed)
    result = SplitResult()
    for _ in range(n_cases):
        n = rng.randint(2, max_stages)
        works = tuple(round(rng.uniform(0.5, 10.0), 2) for _ in range(n))
        budget = rng.randint(n, max_budget)

        pipe = Pipe(*[Seq(w) for w in works])
        contract = ParallelismDegreeContract(min_degree=1, max_degree=budget)
        subs = split_contract(contract, pipe)
        proportional = tuple(s.max_degree for s in subs)

        uniform = uniform_allocation(n, budget)
        optimal = optimal_allocation(works, budget)

        result.cases.append(
            SplitCase(
                works=works,
                budget=budget,
                proportional=proportional,
                uniform=uniform,
                optimal=optimal,
                thr_proportional=allocation_throughput(works, proportional),
                thr_uniform=allocation_throughput(works, uniform),
                thr_optimal=allocation_throughput(works, optimal),
            )
        )
    return result


def verify_throughput_split_soundness(
    *, n_cases: int = 100, seed: int = 11
) -> Tuple[int, int]:
    """Check: stages meeting the forwarded throughput SLA ⇒ pipe meets it.

    Returns (cases checked, cases where the implication held).
    """
    rng = random.Random(seed)
    held = 0
    for _ in range(n_cases):
        n = rng.randint(2, 6)
        works = [rng.uniform(0.5, 10.0) for _ in range(n)]
        target = rng.uniform(0.1, 1.0)
        # farm each stage to the minimum degree satisfying the stage SLA
        stages = []
        for w in works:
            degree = 1
            while throughput(Farm(Seq(w), degree=degree)) < target:
                degree += 1
            stages.append(Farm(Seq(w), degree=degree))
        pipe = Pipe(*stages)
        if throughput(pipe) >= target - 1e-9:
            held += 1
    return n_cases, held
