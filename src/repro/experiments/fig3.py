"""Experiment FIG3 — single AM ensuring a 0.6 task/s contract (Figure 3).

"Figure 3 plots typical behaviour observed when using a single BS to
implement a medical image processing application.  The BS used here
implements a task farm.  Its autonomic manager takes care of performance
optimization/tuning.  The (user provided) contract specifies that 0.6
images per second be processed and the figure plots the initial set-up
of the task farm with the addition of more and more processing resources
up to the point where the contract is eventually satisfied." (§4.1)

We substitute the image-processing stream with a synthetic one whose
per-task work makes a single worker deliver ≈0.2 tasks/s (so the
contract needs ≥3 workers, plus headroom for dispatch dynamics), start
the farm at one worker, and let the Figure 5 rules ramp it up.

Expected shape: a monotone staircase of parallelism degree; throughput
crossing the 0.6 line and stabilising; no add/remove oscillation after
stabilisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.behavioural import FarmBS, build_farm_bs
from ..core.contracts import MinThroughputContract
from ..sim.engine import Simulator
from ..sim.resources import ResourceManager, make_cluster
from ..sim.trace import TraceRecorder
from ..sim.workload import ConstantWork, TaskSource

__all__ = ["Fig3Config", "Fig3Result", "run_fig3"]


@dataclass
class Fig3Config:
    """Parameters of the FIG3 scenario."""

    target_throughput: float = 0.6   # the paper's 0.6 images/s SLA
    worker_rate: float = 0.2         # one worker's service rate (tasks/s)
    input_rate: float = 0.8          # stream pressure (must exceed target)
    initial_degree: int = 1
    pool_size: int = 16
    total_tasks: Optional[int] = None  # None = endless stream
    duration: float = 600.0
    control_period: float = 10.0
    worker_setup_time: float = 5.0
    rate_window: float = 20.0
    add_burst: int = 1               # Fig. 3 adds resources one at a time

    @property
    def worker_work(self) -> float:
        return 1.0 / self.worker_rate


@dataclass
class Fig3Result:
    """Outcome of one FIG3 run, with the figure's two series."""

    config: Fig3Config
    trace: TraceRecorder
    bs: FarmBS
    final_workers: int
    final_throughput: float
    time_to_contract: Optional[float]
    workers_series: List[Tuple[float, float]] = field(default_factory=list)
    throughput_series: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def contract_met(self) -> bool:
        return self.final_throughput >= self.config.target_throughput * 0.95

    @property
    def add_worker_times(self) -> List[float]:
        return [e.time for e in self.trace.events_of(name="addWorker")]

    @property
    def remove_worker_count(self) -> int:
        return self.trace.count("removeWorker")

    def staircase_is_monotone(self) -> bool:
        """Parallelism degree never decreases during the ramp."""
        values = [v for _, v in self.workers_series]
        return all(a <= b for a, b in zip(values, values[1:]))


def run_fig3(config: Optional[Fig3Config] = None) -> Fig3Result:
    """Run the FIG3 scenario and return its trace and summary."""
    cfg = config or Fig3Config()
    sim = Simulator()
    trace = TraceRecorder()
    rm = ResourceManager(make_cluster(cfg.pool_size))

    bs = build_farm_bs(
        sim,
        rm,
        name="imgfarm",
        worker_work=cfg.worker_work,
        initial_degree=cfg.initial_degree,
        trace=trace,
        control_period=cfg.control_period,
        worker_setup_time=cfg.worker_setup_time,
        rate_window=cfg.rate_window,
        constants_kwargs={"add_burst": cfg.add_burst, "max_workers": cfg.pool_size},
        spawn_worker_managers=False,
    )
    TaskSource(
        sim,
        bs.farm.input,
        rate=cfg.input_rate,
        work_model=ConstantWork(cfg.worker_work),
        total=cfg.total_tasks,
        name="imgstream",
        on_end_of_stream=bs.farm.notify_end_of_stream,
    )
    bs.assign_contract(MinThroughputContract(cfg.target_throughput))

    # sample the figure's series on a fixed grid, independent of the
    # manager's own control loop
    def sample() -> None:
        snap = bs.farm.force_snapshot()
        trace.sample("workers", sim.now, snap.num_workers)
        trace.sample("throughput", sim.now, snap.departure_rate)

    sim.periodic(cfg.control_period / 2.0, sample, name="sampler")
    sim.run(until=cfg.duration)

    snap = bs.farm.force_snapshot()
    throughput_series = trace.series_values("throughput")
    time_to_contract = None
    for t, v in throughput_series:
        if v >= cfg.target_throughput:
            time_to_contract = t
            break

    return Fig3Result(
        config=cfg,
        trace=trace,
        bs=bs,
        final_workers=snap.num_workers,
        final_throughput=snap.departure_rate,
        time_to_contract=time_to_contract,
        workers_series=trace.series_values("workers"),
        throughput_series=throughput_series,
    )
