"""Experiment drivers regenerating every figure of the paper.

One module per experiment id from DESIGN.md: :mod:`~.fig3` (Figure 3),
:mod:`~.fig4` (Figure 4), :mod:`~.loadspike` (the §4.2 external-load
claim), :mod:`~.multiconcern` (the §3.2 two-phase protocol),
:mod:`~.split` (P_spl heuristics), :mod:`~.ablation` (design-knob
sweeps), plus :mod:`~.report` which renders each result as the textual
analogue of the corresponding figure.
"""

from .ablation import (
    AblationRow,
    compare_initial_deployment,
    sweep_control_period,
    sweep_hysteresis,
)
from .failures import FaultConfig, FaultResult, run_faults
from .fig3 import Fig3Config, Fig3Result, run_fig3
from .patterns import PatternPoint, PatternsResult, run_patterns
from .stagefarm import StageFarmConfig, StageFarmResult, run_stagefarm
from .fig4 import Fig4Config, Fig4Result, run_fig4
from .loadspike import LoadSpikeConfig, LoadSpikeResult, run_loadspike
from .migration import MigrationConfig, MigrationOutcome, MigrationResult, run_migration
from .multiconcern import MultiConcernConfig, MultiConcernResult, run_multiconcern
from .report import (
    render_ablation,
    render_faults,
    render_fig3,
    render_fig4,
    render_loadspike,
    render_migration,
    render_multiconcern,
    render_patterns,
    render_split,
    render_stagefarm,
    table,
)
from .split import SplitResult, run_split, verify_throughput_split_soundness

__all__ = [
    "Fig3Config",
    "Fig3Result",
    "run_fig3",
    "Fig4Config",
    "Fig4Result",
    "run_fig4",
    "LoadSpikeConfig",
    "LoadSpikeResult",
    "run_loadspike",
    "MultiConcernConfig",
    "MultiConcernResult",
    "run_multiconcern",
    "SplitResult",
    "run_split",
    "verify_throughput_split_soundness",
    "AblationRow",
    "sweep_control_period",
    "sweep_hysteresis",
    "compare_initial_deployment",
    "FaultConfig",
    "FaultResult",
    "run_faults",
    "StageFarmConfig",
    "StageFarmResult",
    "run_stagefarm",
    "render_fig3",
    "render_fig4",
    "render_loadspike",
    "render_multiconcern",
    "render_split",
    "render_ablation",
    "render_faults",
    "render_stagefarm",
    "render_patterns",
    "render_migration",
    "MigrationConfig",
    "MigrationOutcome",
    "MigrationResult",
    "run_migration",
    "PatternPoint",
    "PatternsResult",
    "run_patterns",
    "table",
]
