"""Experiment PATTERNS — task farm vs data-parallel map trade-off.

Section 3 presents both stream-parallel (task farm) and data-parallel
(map) computation as instances of one functional-replication BS.  The
*choice* between them is a functional concern, but it has non-functional
consequences the cost models predict:

* the **farm** pipelines whole tasks across workers — best *throughput*
  under stream pressure (no per-task coordination), but a task's
  *latency* is its full service time plus queueing;
* the **map** scatters each task across all workers — best single-task
  *latency* (work/degree + scatter/gather overheads), but those
  overheads are paid per task, capping throughput below the farm's.

This experiment runs the same stream through both mechanisms at equal
degree and measures throughput and mean latency; the expected shape is
the classic crossover: the map wins latency whenever ``work/degree +
overheads < work``, the farm wins or ties throughput everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..sim.engine import Simulator
from ..sim.farm import SimFarm
from ..sim.map import SimMap
from ..sim.resources import make_cluster
from ..sim.workload import ConstantWork, TaskSource

__all__ = ["PatternPoint", "PatternsResult", "run_patterns"]


@dataclass
class PatternPoint:
    """Measurements for one (pattern, degree) cell.

    ``throughput`` comes from a *saturated* run (input pressure well
    above capacity); ``mean_latency`` from an *unloaded* run (pressure
    well below capacity, so queueing does not mask the per-task service
    shape).  The two regimes isolate what each pattern is best at.
    """

    pattern: str
    degree: int
    throughput: float
    mean_latency: float
    completed: int


@dataclass
class PatternsResult:
    task_work: float
    input_rate: float
    points: List[PatternPoint] = field(default_factory=list)

    def point(self, pattern: str, degree: int) -> PatternPoint:
        for p in self.points:
            if p.pattern == pattern and p.degree == degree:
                return p
        raise KeyError((pattern, degree))

    def degrees(self) -> List[int]:
        return sorted({p.degree for p in self.points})

    def map_wins_latency(self, degree: int) -> bool:
        return (
            self.point("map", degree).mean_latency
            < self.point("farm", degree).mean_latency
        )

    def farm_wins_throughput(self, degree: int) -> bool:
        return (
            self.point("farm", degree).throughput
            >= self.point("map", degree).throughput - 1e-9
        )


def _build(pattern: str, degree: int, *, scatter: float, gather: float):
    sim = Simulator()
    nodes = make_cluster(degree + 1, prefix=f"{pattern}{degree}")
    if pattern == "farm":
        mech = SimFarm(sim, name="farm", emitter_node=nodes[0], worker_setup_time=0.0)
    else:
        mech = SimMap(
            sim,
            name="map",
            emitter_node=nodes[0],
            worker_setup_time=0.0,
            scatter_overhead=scatter,
            gather_overhead=gather,
        )
    for n in nodes[1:]:
        mech.add_worker(n)
    return sim, mech


def _run_one(
    pattern: str,
    degree: int,
    *,
    task_work: float,
    n_tasks: int,
    scatter: float,
    gather: float,
) -> PatternPoint:
    # saturated regime: throughput is capacity-bound
    sim, mech = _build(pattern, degree, scatter=scatter, gather=gather)
    capacity = degree / task_work
    TaskSource(
        sim,
        mech.input,
        rate=capacity * 4.0,
        work_model=ConstantWork(task_work),
        total=n_tasks,
    )
    sim.run(max_events=5_000_000)
    done = mech.output.peek_items()
    makespan = max((t.completed_at for t in done), default=sim.now)
    throughput = len(done) / makespan if makespan > 0 else 0.0

    # unloaded regime: latency shows the per-task service shape
    sim2, mech2 = _build(pattern, degree, scatter=scatter, gather=gather)
    TaskSource(
        sim2,
        mech2.input,
        rate=max(capacity * 0.2, 1e-3),
        work_model=ConstantWork(task_work),
        total=max(10, n_tasks // 5),
    )
    sim2.run(max_events=5_000_000)
    done2 = mech2.output.peek_items()
    latencies = [t.latency for t in done2 if t.latency is not None]

    return PatternPoint(
        pattern=pattern,
        degree=degree,
        throughput=throughput,
        mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        completed=len(done),
    )


def run_patterns(
    *,
    degrees: tuple = (2, 4, 8),
    task_work: float = 8.0,
    n_tasks: int = 80,
    scatter: float = 0.05,
    gather: float = 0.05,
) -> PatternsResult:
    """Sweep both patterns over ``degrees`` with the same stream."""
    result = PatternsResult(task_work=task_work, input_rate=0.0)
    for degree in degrees:
        for pattern in ("farm", "map"):
            result.points.append(
                _run_one(
                    pattern,
                    degree,
                    task_work=task_work,
                    n_tasks=n_tasks,
                    scatter=scatter,
                    gather=gather,
                )
            )
    return result
