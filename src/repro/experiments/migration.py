"""Experiment MIGRATE — migration vs growth as the recovery policy.

Section 3 lists two distinct performance-AM policies for degraded
service: "adaptation of parallelism degree" (add workers — the Figure 5
rule) and "migration of poorly performing activities to faster execution
resources".  This experiment pits them against each other on the
EXT-LOAD scenario: worker nodes lose most of their speed to an external
tenant while fresh, unloaded nodes sit in the pool.

* **standard** policy — the manager adds workers next to the degraded
  ones, recovering throughput by brute capacity (degraded nodes keep
  occupying slots).
* **migration-first** policy — the manager *moves* its slowest workers
  onto the fresh nodes, recovering with the *same* parallelism degree
  and fewer total nodes consumed.

Expected shape: both policies restore the contract; migration ends with
fewer (or equal) workers and strictly fewer allocated nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.behavioural import FarmBS, build_farm_bs
from ..core.contracts import MinThroughputContract
from ..sim.engine import Simulator
from ..sim.resources import ResourceManager, make_cluster
from ..sim.trace import TraceRecorder
from ..sim.workload import ConstantWork, TaskSource

__all__ = ["MigrationConfig", "MigrationOutcome", "MigrationResult", "run_migration"]


@dataclass
class MigrationConfig:
    target_throughput: float = 0.6
    worker_rate: float = 0.2
    input_rate: float = 0.8
    initial_degree: int = 4
    pool_size: int = 20
    spike_time: float = 200.0
    spike_load: float = 0.7          # loaded nodes keep 30% of their speed
    duration: float = 700.0
    control_period: float = 10.0
    worker_setup_time: float = 5.0
    rate_window: float = 20.0

    @property
    def worker_work(self) -> float:
        return 1.0 / self.worker_rate


@dataclass
class MigrationOutcome:
    """One policy's end state."""

    policy: str
    trace: TraceRecorder
    bs: FarmBS
    final_workers: int
    nodes_allocated: int
    final_throughput: float
    migrations: int
    additions: int

    @property
    def recovered(self) -> bool:
        return self.final_throughput >= 0.9 * 0.6  # vs the default target


@dataclass
class MigrationResult:
    config: MigrationConfig
    standard: MigrationOutcome
    migration_first: MigrationOutcome

    @property
    def migration_uses_fewer_nodes(self) -> bool:
        return self.migration_first.nodes_allocated < self.standard.nodes_allocated

    @property
    def both_recover(self) -> bool:
        return self.standard.recovered and self.migration_first.recovered


def _run_policy(policy: str, cfg: MigrationConfig) -> MigrationOutcome:
    sim = Simulator()
    trace = TraceRecorder()
    rm = ResourceManager(make_cluster(cfg.pool_size))

    bs = build_farm_bs(
        sim,
        rm,
        name="farm",
        worker_work=cfg.worker_work,
        initial_degree=cfg.initial_degree,
        trace=trace,
        control_period=cfg.control_period,
        worker_setup_time=cfg.worker_setup_time,
        rate_window=cfg.rate_window,
        constants_kwargs={"add_burst": 1, "max_workers": cfg.pool_size},
        spawn_worker_managers=False,
        policy=policy,
    )
    TaskSource(
        sim,
        bs.farm.input,
        rate=cfg.input_rate,
        work_model=ConstantWork(cfg.worker_work),
        name="stream",
    )
    bs.assign_contract(MinThroughputContract(cfg.target_throughput))

    for w in bs.farm.workers:
        w.node.load_schedule.set_load(cfg.spike_time, cfg.spike_load)

    def sample() -> None:
        snap = bs.farm.force_snapshot()
        trace.sample("throughput", sim.now, snap.departure_rate)
        trace.sample("workers", sim.now, snap.num_workers)

    sim.periodic(cfg.control_period / 2.0, sample, name="sampler")
    sim.run(until=cfg.duration)

    snap = bs.farm.force_snapshot()
    return MigrationOutcome(
        policy=policy,
        trace=trace,
        bs=bs,
        final_workers=snap.num_workers,
        nodes_allocated=rm.allocated_count,
        final_throughput=snap.departure_rate,
        migrations=trace.count("migrateWorker"),
        additions=trace.count("addWorker"),
    )


def run_migration(config: Optional[MigrationConfig] = None) -> MigrationResult:
    cfg = config or MigrationConfig()
    return MigrationResult(
        config=cfg,
        standard=_run_policy("standard", cfg),
        migration_first=_run_policy("migration-first", cfg),
    )
