"""Experiment ABL-RULES — sensitivity of the control loop's design knobs.

DESIGN.md calls out two design choices inherited from the paper that
deserve ablation:

* the **control period** — "The control loop itself invokes the JBoss
  rule engine periodically" (§4.1), but the paper never justifies the
  period.  Too long and the manager reacts sluggishly (time-to-contract
  grows); too short and it overreacts to noisy windowed rates
  (over-provisioning, oscillation).
* the **hysteresis width** — the gap between ``FARM_LOW_PERF_LEVEL`` and
  ``FARM_HIGH_PERF_LEVEL``.  A degenerate width (low == high) makes the
  add/remove rule pair oscillate; the paper's 0.3–0.7 stripe is wide.

Both sweeps run the FIG3 scenario with one knob varied, reporting
time-to-contract, final parallelism degree, and the number of
reconfigurations (adds + removes — the oscillation measure).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..core.behavioural import build_farm_bs
from ..core.contracts import ThroughputRangeContract
from ..sim.engine import Simulator
from ..sim.resources import ResourceManager, make_cluster
from ..sim.trace import TraceRecorder
from ..sim.workload import ConstantWork, TaskSource
from .fig3 import Fig3Config, Fig3Result, run_fig3

__all__ = [
    "AblationRow",
    "sweep_control_period",
    "sweep_hysteresis",
    "compare_initial_deployment",
]


@dataclass
class AblationRow:
    """One sweep point's outcome."""

    knob: str
    value: float
    time_to_contract: Optional[float]
    final_workers: int
    final_throughput: float
    adds: int
    removes: int

    @property
    def reconfigurations(self) -> int:
        return self.adds + self.removes


def sweep_control_period(
    periods: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 40.0),
    base: Optional[Fig3Config] = None,
) -> List[AblationRow]:
    """Run FIG3 once per control period."""
    rows = []
    for period in periods:
        cfg = replace(base or Fig3Config(), control_period=period)
        r = run_fig3(cfg)
        rows.append(_row("control_period", period, r))
    return rows


def sweep_hysteresis(
    widths: Sequence[float] = (0.0, 0.1, 0.2, 0.4, 0.8),
    *,
    center: float = 0.6,
    duration: float = 600.0,
) -> List[AblationRow]:
    """Run a range-contract farm with varying stripe widths around 0.6.

    Width 0 is the degenerate low==high contract; the add/remove pair
    then chatters whenever the measured rate crosses the line.
    """
    rows = []
    for width in widths:
        low = max(0.05, center - width / 2.0)
        high = center + width / 2.0
        rows.append(_run_hysteresis_case(width, low, high, duration))
    return rows


def compare_initial_deployment(
    base: Optional[Fig3Config] = None,
) -> List[AblationRow]:
    """§3's "initial parallelism degree setup" vs the ramp-from-one.

    ``initial_degree=1`` reproduces FIG3's staircase; ``initial_degree=0``
    lets the manager deploy the cost model's optimal degree the moment the
    contract arrives — the paper's claim that the degree "can be initially
    set to some 'optimal' value and then adapted".
    """
    rows = []
    for label, degree in (("ramp-from-1", 1), ("model-initial", 0)):
        cfg = replace(base or Fig3Config(), initial_degree=degree)
        r = run_fig3(cfg)
        row = _row("initial_deployment", degree, r)
        row.knob = label
        rows.append(row)
    return rows


def _run_hysteresis_case(width: float, low: float, high: float, duration: float) -> AblationRow:
    sim = Simulator()
    trace = TraceRecorder()
    rm = ResourceManager(make_cluster(24))
    worker_work = 5.0  # 0.2 tasks/s per worker
    bs = build_farm_bs(
        sim,
        rm,
        name="farm",
        worker_work=worker_work,
        initial_degree=1,
        trace=trace,
        control_period=10.0,
        worker_setup_time=5.0,
        rate_window=20.0,
        constants_kwargs={"add_burst": 1, "max_workers": 24},
        spawn_worker_managers=False,
    )
    TaskSource(
        sim,
        bs.farm.input,
        rate=high + 0.2,  # pressure above the stripe keeps the farm loaded
        work_model=ConstantWork(worker_work),
        name="stream",
    )
    bs.assign_contract(ThroughputRangeContract(low, high))

    def sample() -> None:
        snap = bs.farm.force_snapshot()
        trace.sample("throughput", sim.now, snap.departure_rate)

    sim.periodic(5.0, sample, name="sampler")
    sim.run(until=duration)

    snap = bs.farm.force_snapshot()
    ttc = None
    for t, v in trace.series_values("throughput"):
        if v >= low:
            ttc = t
            break
    return AblationRow(
        knob="hysteresis_width",
        value=width,
        time_to_contract=ttc,
        final_workers=snap.num_workers,
        final_throughput=snap.departure_rate,
        adds=trace.count("addWorker"),
        removes=trace.count("removeWorker"),
    )


def _row(knob: str, value: float, r: Fig3Result) -> AblationRow:
    return AblationRow(
        knob=knob,
        value=value,
        time_to_contract=r.time_to_contract,
        final_workers=r.final_workers,
        final_throughput=r.final_throughput,
        adds=len(r.add_worker_times),
        removes=r.remove_worker_count,
    )
