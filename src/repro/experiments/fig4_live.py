"""Experiment FIG4-LIVE — the Figure 4 farm phases on a real substrate.

``fig4 --backend={thread,process,dist}`` replays the farm-side story of the
paper's §4.2 scenario against a *live* backend instead of the
discrete-event simulator, driven by the very same Figure 5 rule objects
(:func:`repro.core.policies.farm_rules`) through
:class:`~repro.runtime.controller.FarmController`:

1. **starvation** — the feeder runs below the contract stripe; the
   arrival-rate rule (``CheckInterArrivalRateLow``) raises
   ``notEnoughTasks`` violations, and no growth happens (the paper's
   "nothing can usefully be done locally").
2. **growth** — the feeder jumps above the stripe; departure rate lags
   behind with too few workers, so ``CheckRateLow`` fires
   ``ADD_EXECUTOR`` until throughput re-enters the contract.
3. **crash** (no-op on the thread backend) — one worker is faulted
   mid-stream: SIGKILLed on the process backend, its TCP connection
   severed on the dist backend (the fault a networked deployment
   actually meets).  The farm replays its un-acked tasks
   (at-least-once, deduped to exactly-once outward) while the capacity
   loss re-triggers ``CheckRateLow``: fault recovery is contract
   enforcement, as §2 frames it.
4. **drain** — the stream ends; every submitted task must be accounted
   for (zero loss even across the kill).

With ``--with-security`` the same run becomes the §3.2 *multi-concern*
story: the controller's grow actuations route through a live
:class:`~repro.runtime.multiconcern.LiveGeneralManager` coordinating it
with a :class:`~repro.security.LiveSecurityManager` over a pool of
**untrusted** nodes.  Every growth then follows grow → quarantine →
secure → admit, and the run asserts its own invariant from the farm's
dispatch counters: zero tasks ever handed to an unsecured channel
(``repro_mc_insecure_dispatch_total == 0``), still with zero loss.
``coordination="naive"`` is the ablation: same pool, no intent
protocol, so the insecure-dispatch counter measures the leak window.

The sim backend (default) remains byte-identical to the regenerated
Figure 4 artefacts — this module never touches it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..core.contracts import ThroughputRangeContract
from ..core.multiconcern import CoordinationMode
from ..obs.telemetry import Telemetry
from ..runtime.backend import FarmBackend
from ..runtime.controller import FarmController
from ..runtime.dist_farm import DistFarm
from ..runtime.farm_runtime import ThreadFarm
from ..runtime.multiconcern import LiveGeneralManager, WorkerPlacement
from ..runtime.process_farm import ProcessFarm
from ..security.manager import LiveSecurityManager
from ..sim.resources import Domain, ResourceManager, make_cluster

__all__ = [
    "Fig4LiveConfig",
    "Fig4LiveResult",
    "Fig4ShardedConfig",
    "Fig4ShardedResult",
    "live_task",
    "make_backend",
    "run_fig4_live",
    "render_fig4_live",
    "run_fig4_sharded",
    "render_fig4_sharded",
]

LIVE_BACKENDS = ("thread", "process", "dist")


@dataclass
class Fig4LiveConfig:
    """Parameters of the live FIG4 scenario (wall-clock seconds)."""

    backend: str = "thread"
    contract_low: float = 30.0
    contract_high: float = 90.0
    task_work: float = 0.04          # one worker sustains ~25 tasks/s
    starve_rate: float = 10.0        # phase-1 feed, below the stripe
    feed_rate: float = 60.0          # phase-2 feed, inside the stripe
    starve_duration: float = 0.8
    total_tasks: int = 200
    initial_workers: int = 1
    max_workers: int = 8
    control_period: float = 0.2
    rate_window: float = 1.5
    inject_crash: bool = True        # honoured by process (SIGKILL) and dist (cut TCP)
    crash_after: int = 60            # tasks fed before the fault
    drain_timeout: float = 60.0
    with_security: bool = False      # run the §3.2 multi-concern story
    untrusted_nodes: int = 16        # growth pool size (all untrusted)
    coordination: str = "two-phase"  # or "naive": the leak-window ablation
    serve_telemetry: bool = False    # expose /metrics + /trace live over HTTP
    telemetry_port: int = 0          # 0 = pick a free port
    kill_coordinator: bool = False   # crash the whole coordinator stack mid-feed
    journal_path: str = ""           # dispatch journal ("" = private temp file)
    # -- SLO engine (attached whenever the run has real telemetry) ------
    with_slo: bool = True            # compile the contract into live SLOs
    slo_window_scale: float = 1.0 / 150.0  # SRE minutes → fig4 seconds
    slo_budget_window: float = 30.0  # error-budget horizon (s)
    slo_budget_fraction: float = 0.05
    scrape_interval: float = 0.0     # TSDB scrape period (0 = control_period/2)


@dataclass
class Fig4LiveResult:
    """Outcome of one live run: the same traces, measured not simulated."""

    config: Fig4LiveConfig
    backend: str
    completed: int
    results_ok: bool
    duration: float
    actions: List[Tuple[float, str]]
    violations: List[Tuple[float, str]]
    worker_series: List[Tuple[float, float]] = field(default_factory=list)
    throughput_series: List[Tuple[float, float]] = field(default_factory=list)
    arrival_series: List[Tuple[float, float]] = field(default_factory=list)
    final_workers: int = 0
    crashes: int = 0
    replays: int = 0
    duplicates: int = 0
    dead_letters: int = 0
    # -- multi-concern story (populated by --with-security runs) -------
    mc_committed: int = 0
    mc_vetoed: int = 0
    mc_admitted: int = 0
    mc_amendments: int = 0
    insecure_dispatches: int = 0
    secured_workers: int = 0
    quarantined_at_end: int = 0
    # -- self-healing story (populated by --kill-coordinator runs) -----
    failovers: int = 0
    failover_latency: float = 0.0
    final_epoch: int = 0
    redispatched: int = 0
    #: base URL the live telemetry endpoint served on (when enabled)
    telemetry_url: str = ""
    # -- SLO story (populated whenever the run had real telemetry) ------
    slo_objectives: int = 0
    #: (t, slo, from_level, to_level) for every alert transition
    slo_transitions: List[Tuple[float, str, str, str]] = field(default_factory=list)
    slo_pages: int = 0
    slo_violation_seconds: float = 0.0
    adaptation_cycles: int = 0
    #: violation-observed → effect-visible latency of the first full cycle
    adaptation_latency: float = 0.0

    # -- figure-level checks -------------------------------------------
    def grew(self) -> bool:
        return any("addWorker" in a for _, a in self.actions)

    def starved_first(self) -> bool:
        """notEnoughTasks precedes the first growth, as in the paper."""
        viol = [t for t, v in self.violations if "notEnough" in str(v)]
        grow = [t for t, a in self.actions if "addWorker" in a]
        return bool(viol) and (not grow or min(viol) <= min(grow))

    def zero_loss(self) -> bool:
        return self.results_ok and self.dead_letters == 0

    def security_story_ok(self) -> bool:
        """The --with-security invariant: growth happened through the
        gate, nothing leaked, nothing lost, nobody stuck in quarantine."""
        return (
            self.mc_committed > 0
            and self.mc_admitted > 0
            and self.insecure_dispatches == 0
            and self.quarantined_at_end == 0
            and self.zero_loss()
        )

    def failover_story_ok(self) -> bool:
        """The --kill-coordinator invariant: the coordinator died with
        tasks in flight and the supervisor recovered every one of them
        exactly once."""
        return self.failovers > 0 and self.zero_loss()

    def slo_story_ok(self) -> bool:
        """The observability invariant: objectives were derived from the
        live contract, the starve phase burned budget loudly enough to
        raise at least one alert, and the violation time was accounted."""
        return (
            self.slo_objectives > 0
            and any(to != "ok" for _, _, _, to in self.slo_transitions)
            and self.slo_violation_seconds > 0.0
        )


def live_task(payload: Any) -> Any:
    """The stage function: ``task_work`` seconds of blocking work.

    Module-level so it survives pickling under every multiprocessing
    start method.  Sleep-based, so the thread backend scales too and the
    two backends face the identical workload.
    """
    work, value = payload
    time.sleep(work)
    return value * value


def make_backend(
    cfg: Fig4LiveConfig, telemetry: Optional[Telemetry] = None
) -> FarmBackend:
    if cfg.backend == "thread":
        return ThreadFarm(
            live_task,
            initial_workers=cfg.initial_workers,
            name="fig4-thread",
            rate_window=cfg.rate_window,
            max_workers=cfg.max_workers,
            telemetry=telemetry,
        )
    if cfg.backend == "process":
        return ProcessFarm(
            live_task,
            initial_workers=cfg.initial_workers,
            name="fig4-process",
            rate_window=cfg.rate_window,
            max_workers=cfg.max_workers,
            telemetry=telemetry,
        )
    if cfg.backend == "dist":
        return DistFarm(
            live_task,
            initial_workers=cfg.initial_workers,
            name="fig4-dist",
            rate_window=cfg.rate_window,
            max_workers=cfg.max_workers,
            telemetry=telemetry,
        )
    raise ValueError(f"unknown live backend {cfg.backend!r} (choose from {LIVE_BACKENDS})")


def _attach_slo(
    cfg: Fig4LiveConfig, telemetry: Optional[Telemetry], contract: Any, manager: str
) -> Optional[Any]:
    """Compile the run's contract into live SLOs — no manual alert config.

    Starts the embedded TSDB (scraping at half the control period so
    every MAPE tick is observed), derives objectives straight from the
    active contract via :func:`repro.obs.slo.slo_from_contract`, and
    evaluates them with the SRE burn-rate windows scaled from minutes to
    fig4's seconds.
    """
    if telemetry is None or not telemetry.enabled or not cfg.with_slo:
        return None
    from ..obs.slo import BurnWindows, SLOEngine, slo_from_contract

    interval = cfg.scrape_interval or cfg.control_period / 2.0
    store = telemetry.start_timeseries(
        interval=interval, retention=600.0, scraper_thread=True
    )
    slos = slo_from_contract(
        contract,
        name=f"fig4.{cfg.backend}",
        manager=manager,
        budget_fraction=cfg.slo_budget_fraction,
        budget_window=cfg.slo_budget_window,
    )
    return SLOEngine(
        telemetry,
        store,
        slos,
        windows=BurnWindows().scaled(cfg.slo_window_scale),
        broker=telemetry.stream,
    )


def _harvest_slo(result: Fig4LiveResult, telemetry: Optional[Telemetry]) -> None:
    """Fold the engine's accounting into the run result (None-safe)."""
    engine = getattr(telemetry, "slo", None) if telemetry is not None else None
    if engine is None:
        return
    result.slo_objectives = len(engine.slos)
    for name, transitions in engine.transitions().items():
        for tr in transitions:
            result.slo_transitions.append((tr["t"], name, tr["from"], tr["to"]))
    result.slo_transitions.sort()
    result.slo_pages = sum(1 for *_rest, to in result.slo_transitions if to == "page")
    result.slo_violation_seconds = sum(engine.violation_seconds().values())
    tracker = getattr(telemetry, "adaptation", None)
    if tracker is not None and tracker.cycles:
        result.adaptation_cycles = len(tracker.cycles)
        result.adaptation_latency = tracker.cycles[0]["total"]


def run_fig4_live(
    config: Optional[Fig4LiveConfig] = None, *, telemetry: Optional[Telemetry] = None
) -> Fig4LiveResult:
    """Run the live scenario and return its measured traces."""
    cfg = config or Fig4LiveConfig()
    if cfg.kill_coordinator:
        if cfg.with_security:
            raise ValueError(
                "--kill-coordinator and --with-security are mutually exclusive"
            )
        return _run_fig4_supervised(cfg, telemetry)
    if telemetry is None and (cfg.with_security or cfg.serve_telemetry):
        # the security story proves itself via the dispatch counters, and
        # the live endpoint has nothing to serve without a store — either
        # way the run needs real telemetry, not the null object
        telemetry = Telemetry()
    server = None
    if cfg.serve_telemetry:
        server = telemetry.serve(port=cfg.telemetry_port)
        print(
            f"live telemetry on http://{server.host}:{server.port} "
            "(/metrics, /traces, /trace/<id>, /healthz, /query, /slo, /stream)"
        )
    farm = make_backend(cfg, telemetry)
    contract = ThroughputRangeContract(cfg.contract_low, cfg.contract_high)
    controller = FarmController(
        farm,
        contract,
        control_period=cfg.control_period,
        max_workers=cfg.max_workers,
        telemetry=telemetry,
        name=f"AM_{cfg.backend}",
    )
    _attach_slo(cfg, telemetry, contract, f"AM_{cfg.backend}")
    security: Optional[LiveSecurityManager] = None
    gm: Optional[LiveGeneralManager] = None
    if cfg.with_security:
        # every channel starts secured; every *new* worker lands on
        # untrusted ground, so the intent protocol must secure it before
        # the dispatcher may touch it
        farm.secure_all()
        pool = make_cluster(
            cfg.untrusted_nodes,
            prefix="u",
            domain=Domain("untrusted_ip_domain_A", trusted=False),
        )
        placement = WorkerPlacement(ResourceManager(pool))
        security = LiveSecurityManager(
            farm,
            placement,
            control_period=cfg.control_period,
            telemetry=telemetry,
            name=f"AM_sec_{cfg.backend}",
        )
        gm = LiveGeneralManager(
            farm,
            placement,
            mode=CoordinationMode(cfg.coordination),
            telemetry=telemetry,
            name=f"GM_{cfg.backend}",
        )
        gm.register(security)
        gm.register(controller, priority=0)
        security.start()
    controller.start()

    worker_series: List[Tuple[float, float]] = []
    throughput_series: List[Tuple[float, float]] = []
    arrival_series: List[Tuple[float, float]] = []
    last_sample = [0.0]

    def sample() -> None:
        now = farm.now()
        if now - last_sample[0] < cfg.control_period / 2.0:
            return
        last_sample[0] = now
        snap = farm.snapshot()
        worker_series.append((now, snap.num_workers))
        throughput_series.append((now, snap.departure_rate))
        arrival_series.append((now, snap.arrival_rate))

    fed = 0
    crashed = False
    try:
        # phase 1: starvation below the stripe
        t_end = farm.now() + cfg.starve_duration
        while farm.now() < t_end and fed < cfg.total_tasks:
            farm.submit((cfg.task_work, fed))
            fed += 1
            sample()
            time.sleep(1.0 / cfg.starve_rate)
        # phases 2-3: pressure inside the stripe, with an optional kill
        while fed < cfg.total_tasks:
            farm.submit((cfg.task_work, fed))
            fed += 1
            if cfg.inject_crash and not crashed and fed >= cfg.crash_after:
                if isinstance(farm, DistFarm):
                    # the distributed fault: sever the TCP connection —
                    # the worker process itself may be perfectly healthy
                    crashed = farm.drop_connection() is not None
                elif isinstance(farm, ProcessFarm):
                    crashed = farm.inject_crash() is not None
            sample()
            time.sleep(1.0 / cfg.feed_rate)
        # phase 4: drain
        results = farm.drain_results(fed, timeout=cfg.drain_timeout)
        sample()
        expected = sorted(i * i for i in range(fed))
        results_ok = sorted(results) == expected
        duration = farm.now()
        if security is not None:
            security.stop()
        controller.stop()
        snap = farm.snapshot()
        result = Fig4LiveResult(
            config=cfg,
            backend=cfg.backend,
            completed=snap.completed,
            results_ok=results_ok,
            duration=duration,
            actions=list(controller.actions),
            violations=list(controller.violations),
            worker_series=worker_series,
            throughput_series=throughput_series,
            arrival_series=arrival_series,
            final_workers=snap.num_workers,
            crashes=len(getattr(farm, "crashes", [])),
            replays=getattr(farm, "replays", 0),
            duplicates=getattr(farm, "duplicates", 0),
            dead_letters=len(getattr(farm, "dead_letters", [])),
        )
        _harvest_slo(result, telemetry)
        if gm is not None and telemetry is not None:
            outcomes = gm.outcomes()
            result.mc_committed = outcomes.get("committed", 0) + outcomes.get("partial", 0)
            result.mc_vetoed = outcomes.get("vetoed", 0)
            result.mc_amendments = sum(r.amendments for r in gm.intents)
            metrics = telemetry.metrics
            result.mc_admitted = int(
                metrics.counter("repro_mc_admitted_workers_total", "")
                .labels(gm=gm.name).value
            )
            result.insecure_dispatches = int(
                metrics.counter("repro_mc_insecure_dispatch_total", "")
                .labels(farm=farm.name).value
            )
            result.secured_workers = sum(
                1 for w in farm.workers if getattr(w, "active", True) and w.secured
            )
            result.quarantined_at_end = snap.quarantined
        if server is not None:
            result.telemetry_url = f"http://{server.host}:{server.port}"
        return result
    finally:
        if security is not None:
            security.stop()
        controller.stop()
        if telemetry is not None:
            telemetry.stop_timeseries()
        farm.shutdown()
        if server is not None:
            server.close()


# ----------------------------------------------------------------------
# the self-healing variant: --kill-coordinator
# ----------------------------------------------------------------------


def _run_fig4_supervised(
    cfg: Fig4LiveConfig, telemetry: Optional[Telemetry]
) -> Fig4LiveResult:
    """The FIG4 phases with the *coordinator itself* as the fault.

    The farm runs behind :class:`~repro.runtime.supervision.SupervisedFarm`
    (journaled dispatch) with a
    :class:`~repro.runtime.supervision.Supervisor` watching the
    heartbeat.  At ``crash_after`` fed tasks the whole coordinator stack
    — dispatcher and controller — is killed with tasks in flight; the
    supervisor replays the journal, promotes a new incarnation (the
    standby on the dist backend, with live workers reattaching over
    TCP), redispatches the in-flight tasks and restarts the controller
    under the journaled contract.  Zero loss must hold *across the
    coordinator's death*, not just a worker's.
    """
    import os
    import tempfile

    from ..runtime.supervision import SupervisedFarm, Supervisor

    if telemetry is None and cfg.serve_telemetry:
        telemetry = Telemetry()
    server = None
    if cfg.serve_telemetry:
        server = telemetry.serve(port=cfg.telemetry_port)
        print(
            f"live telemetry on http://{server.host}:{server.port} "
            "(/metrics, /traces, /trace/<id>, /healthz, /query, /slo, /stream)"
        )
    journal_path = cfg.journal_path
    cleanup_journal = False
    if not journal_path:
        fd, journal_path = tempfile.mkstemp(prefix="fig4-journal-", suffix=".jsonl")
        os.close(fd)
        cleanup_journal = True
    farm = SupervisedFarm(
        live_task,
        backend=cfg.backend,
        journal_path=journal_path,
        name=f"fig4-{cfg.backend}",
        initial_workers=cfg.initial_workers,
        max_workers=cfg.max_workers,
        telemetry=telemetry,
        farm_options={"rate_window": cfg.rate_window},
    )
    contract = ThroughputRangeContract(cfg.contract_low, cfg.contract_high)
    supervisor = Supervisor(
        farm,
        contract=contract,
        control_period=cfg.control_period,
        max_workers=cfg.max_workers,
        telemetry=telemetry,
    ).start()
    # the supervised controller keeps an epoch-stable manager name, so
    # its gauges form one series across failovers and these objectives
    # keep judging the farm through the coordinator's death
    _attach_slo(cfg, telemetry, contract, f"{supervisor.name}-am")

    worker_series: List[Tuple[float, float]] = []
    throughput_series: List[Tuple[float, float]] = []
    arrival_series: List[Tuple[float, float]] = []
    last_sample = [0.0]

    def sample() -> None:
        now = farm.now()
        if now - last_sample[0] < cfg.control_period / 2.0:
            return
        last_sample[0] = now
        snap = farm.snapshot()
        worker_series.append((now, snap.num_workers))
        throughput_series.append((now, snap.departure_rate))
        arrival_series.append((now, snap.arrival_rate))

    # actions/violations span coordinator incarnations: snapshot the
    # doomed controller's lists right before killing it, then append the
    # replacement's at the end
    actions: List[Tuple[float, str]] = []
    violations: List[Tuple[float, str]] = []

    def harvest_controller() -> None:
        controller = supervisor.controller
        if controller is not None:
            actions.extend(controller.actions)
            violations.extend(controller.violations)

    fed = 0
    crashed = False
    try:
        t_end = farm.now() + cfg.starve_duration
        while farm.now() < t_end and fed < cfg.total_tasks:
            farm.submit((cfg.task_work, fed))
            fed += 1
            sample()
            time.sleep(1.0 / cfg.starve_rate)
        while fed < cfg.total_tasks:
            farm.submit((cfg.task_work, fed))
            fed += 1
            if cfg.inject_crash and not crashed and fed >= cfg.crash_after:
                harvest_controller()
                supervisor.crash_coordinator()
                crashed = True
            sample()
            time.sleep(1.0 / cfg.feed_rate)
        results = farm.drain_results(fed, timeout=cfg.drain_timeout)
        sample()
        expected = sorted(i * i for i in range(fed))
        results_ok = sorted(results) == expected
        duration = farm.now()
        harvest_controller()
        supervisor.stop()
        snap = farm.snapshot()
        result = Fig4LiveResult(
            config=cfg,
            backend=cfg.backend,
            completed=snap.completed,
            results_ok=results_ok,
            duration=duration,
            actions=actions,
            violations=violations,
            worker_series=worker_series,
            throughput_series=throughput_series,
            arrival_series=arrival_series,
            final_workers=snap.num_workers,
            crashes=1 if crashed else 0,
            replays=farm.redispatched,
            duplicates=farm.duplicates,
            dead_letters=0,
            failovers=supervisor.failovers,
            failover_latency=farm.last_failover_seconds or 0.0,
            final_epoch=farm.epoch,
            redispatched=farm.redispatched,
        )
        _harvest_slo(result, telemetry)
        if server is not None:
            result.telemetry_url = f"http://{server.host}:{server.port}"
        return result
    finally:
        supervisor.stop()
        if telemetry is not None:
            telemetry.stop_timeseries()
        farm.shutdown()
        if server is not None:
            server.close()
        if cleanup_journal:
            try:
                os.unlink(journal_path)
            except OSError:
                pass


# ----------------------------------------------------------------------
# the sharded variant: --shards / --tenants
# ----------------------------------------------------------------------


@dataclass
class Fig4ShardedConfig:
    """Parameters of the farm-of-farms scenario (wall-clock seconds).

    With ``tenants == 0`` the run tells the *rebalancing* story: the
    whole feed lands on shard 0, whose own Figure 5 rules grow it to its
    parent-granted budget and then stall (``noLocalPlan``), so the
    parent moves budget from the idle shards until the hot shard can
    carry its slice.  With ``tenants > 0`` it tells the *multi-tenant*
    story instead: every submission passes the admission gate and the
    over-quota backlogs drain in weighted fair share.
    """

    backend: str = "thread"
    shards: int = 2
    tenants: int = 0
    contract_low: float = 120.0
    contract_high: float = 400.0
    task_work: float = 0.04           # one worker sustains ~25 tasks/s
    feed_rate: float = 100.0
    total_tasks: int = 240
    max_workers_total: int = 4
    control_period: float = 0.1
    rebalance_cooldown: float = 0.3
    rate_window: float = 0.8
    tenant_rate: float = 20.0         # per-tenant SLA (tasks/s)
    tenant_burst: float = 1.0
    drain_timeout: float = 60.0


@dataclass
class Fig4ShardedResult:
    """Outcome of one farm-of-farms run."""

    config: Fig4ShardedConfig
    backend: str
    completed: int
    results_ok: bool
    duration: float
    budgets: List[int] = field(default_factory=list)
    workers: List[int] = field(default_factory=list)
    #: (time, from_shard, to_shard, latency) for each capacity move
    rebalances: List[Tuple[float, int, int, float]] = field(default_factory=list)
    #: violation kind → count, aggregated by the parent across shards
    shard_violations: dict = field(default_factory=dict)
    root_violations: int = 0
    #: (name, submitted, admitted, queued, rejected, dispatched)
    tenant_stats: List[Tuple[str, int, int, int, int, int]] = field(default_factory=list)
    #: max relative deviation of a tenant's dispatch count from the mean,
    #: sampled while every tenant was still backlogged (the contended window)
    fair_share_error: float = 0.0

    def rebalanced(self) -> bool:
        return bool(self.rebalances)

    def zero_loss(self) -> bool:
        return self.results_ok


def run_fig4_sharded(
    config: Optional[Fig4ShardedConfig] = None,
    *,
    telemetry: Optional[Telemetry] = None,
) -> Fig4ShardedResult:
    """Run the farm-of-farms scenario and return its measured outcome."""
    from ..core.contracts import ThroughputRangeContract as _Range
    from ..runtime.hierarchy import ShardedFarm, TenantRegistry

    cfg = config or Fig4ShardedConfig()
    registry = None
    tenant_names: List[str] = []
    if cfg.tenants > 0:
        registry = TenantRegistry(telemetry=telemetry)
        for i in range(cfg.tenants):
            name = f"tenant{i}"
            registry.register(name, cfg.tenant_rate, burst=cfg.tenant_burst)
            tenant_names.append(name)
    farm = ShardedFarm(
        live_task,
        contract=_Range(cfg.contract_low, cfg.contract_high),
        shards=cfg.shards,
        backend=cfg.backend,
        max_workers_total=cfg.max_workers_total,
        control_period=cfg.control_period,
        rebalance_cooldown=cfg.rebalance_cooldown,
        registry=registry,
        telemetry=telemetry,
        shard_kwargs={"rate_window": cfg.rate_window},
    )
    expected: List[int] = []
    fair_share_error = 0.0
    try:
        if cfg.tenants > 0:
            # multi-tenant story: everything through the admission gate
            for i in range(cfg.total_tasks):
                tenant = tenant_names[i % cfg.tenants]
                verdict = farm.submit((cfg.task_work, i), tenant=tenant)
                if verdict != "reject":
                    expected.append(i * i)
                time.sleep(1.0 / cfg.feed_rate)
            # the contended window: every backlogged tenant is draining
            # against its token rate, so dispatch counts here measure
            # fair share, not merely "everything got through eventually"
            dispatched = [registry.get(n).dispatched for n in tenant_names]
            mean = sum(dispatched) / len(dispatched)
            if mean > 0:
                fair_share_error = max(
                    abs(d - mean) / mean for d in dispatched
                )
        else:
            # rebalancing story: the whole feed lands on shard 0
            for i in range(cfg.total_tasks):
                farm.shards[0].farm.submit((cfg.task_work, i))
                expected.append(i * i)
                time.sleep(1.0 / cfg.feed_rate)
        # tenant backlogs keep draining through the parent loop's pump
        results = farm.drain_results(len(expected), timeout=cfg.drain_timeout)
        results_ok = sorted(results) == sorted(expected)
        violations: dict = {}
        for _t, _shard, kind in farm.violations:
            violations[kind] = violations.get(kind, 0) + 1
        tenant_stats = [
            (t.name, t.submitted, t.admitted, t.queued, t.rejected, t.dispatched)
            for t in (registry.tenants() if registry is not None else [])
        ]
        return Fig4ShardedResult(
            config=cfg,
            backend=cfg.backend,
            completed=farm.completed,
            results_ok=results_ok,
            duration=farm.now(),
            budgets=list(farm.budgets),
            workers=[s.farm.num_workers for s in farm.shards],
            rebalances=[
                (e.time, e.from_shard, e.to_shard, e.latency)
                for e in farm.rebalances
            ],
            shard_violations=violations,
            root_violations=len(farm.root_violations),
            tenant_stats=tenant_stats,
            fair_share_error=fair_share_error,
        )
    finally:
        farm.shutdown()


def render_fig4_sharded(r: Fig4ShardedResult) -> str:
    """ASCII report for the farm-of-farms run."""
    from .report import table

    cfg = r.config
    out = [
        f"=== FIG4-SHARDED: {cfg.shards}-shard hierarchy on the "
        f"{r.backend} backend ===",
        "",
        f"root SLA: {cfg.contract_low:g}-{cfg.contract_high:g} tasks/s; "
        f"{cfg.total_tasks} tasks of {cfg.task_work * 1000:g} ms; "
        f"total worker budget {cfg.max_workers_total}"
        + (
            f"; {cfg.tenants} tenants at {cfg.tenant_rate:g} tasks/s each"
            if cfg.tenants
            else "; whole feed skewed onto shard 0"
        ),
        "",
        table(
            ["shard", "budget", "workers"],
            [
                [f"shard {i}", b, w]
                for i, (b, w) in enumerate(zip(r.budgets, r.workers))
            ],
        ),
    ]
    checks = [
        ["all dispatched tasks completed (zero loss)", r.zero_loss()],
        ["tasks completed", r.completed],
        ["capacity moves (rebalances)", len(r.rebalances)],
        ["root SLA violations (no donor left)", r.root_violations],
    ]
    for kind, count in sorted(r.shard_violations.items()):
        checks.append([f"shard violations: {kind}", count])
    if r.tenant_stats:
        out.append(
            table(
                ["tenant", "submitted", "admitted", "queued", "rejected", "dispatched"],
                [list(row) for row in r.tenant_stats],
            )
        )
        checks.append(
            ["fair-share error (contended window)", f"{r.fair_share_error:.1%}"]
        )
    out.append(table(["checkpoint", "measured"], checks))
    if r.rebalances:
        t, src, dst, lat = r.rebalances[0]
        out.append(
            f"first rebalance at t={t:.2f}s: shard {src} -> shard {dst} "
            f"({lat * 1000:.0f} ms after starvation was first seen)"
        )
    out.append(f"wall-clock duration: {r.duration:.2f}s")
    return "\n".join(out)


def render_fig4_live(r: Fig4LiveResult) -> str:
    """ASCII report mirroring the shape of the simulated Figure 4 one."""
    from .report import ascii_series, table

    cfg = r.config
    out = [
        f"=== FIG4-LIVE: Figure 5 rules on the {r.backend} backend (wall clock) ===",
        "",
        f"contract: {cfg.contract_low:g}-{cfg.contract_high:g} tasks/s; "
        f"{cfg.total_tasks} tasks of {cfg.task_work * 1000:g} ms; "
        f"feed {cfg.starve_rate:g} -> {cfg.feed_rate:g} tasks/s; "
        f"workers start at {cfg.initial_workers}",
        "",
        "--- arrival rate vs the contract stripe ---",
        ascii_series(
            r.arrival_series,
            hlines=[cfg.contract_low, cfg.contract_high],
            title="arrival rate (tasks/s) — dashes = contract stripe",
            height=8,
        ),
        "--- throughput vs the contract stripe ---",
        ascii_series(
            r.throughput_series,
            hlines=[cfg.contract_low, cfg.contract_high],
            title="departure rate (tasks/s) — dashes = contract stripe",
            height=8,
        ),
        "--- workers in use ---",
        ascii_series(r.worker_series, title="live workers", height=6),
    ]
    checks = [
        ["all tasks completed (zero loss)", r.zero_loss()],
        ["starvation reported before growth", r.starved_first()],
        ["CheckRateLow grew the farm", r.grew()],
        ["final workers", r.final_workers],
        ["controller actions", len(r.actions)],
        ["violations reported", len(r.violations)],
    ]
    if cfg.kill_coordinator:
        checks += [
            ["coordinator crashes injected", r.crashes],
            ["coordinator failovers (supervisor)", r.failovers],
            ["journal replay + rebuild latency", f"{r.failover_latency * 1000:.1f} ms"],
            ["in-flight tasks redispatched", r.redispatched],
            ["duplicate deliveries suppressed", r.duplicates],
            ["final coordinator epoch", r.final_epoch],
            ["self-healing story holds", r.failover_story_ok()],
        ]
    elif r.backend in ("process", "dist"):
        fault = "SIGKILL injected" if r.backend == "process" else "connection severed"
        checks += [
            [f"worker crashes ({fault})", r.crashes],
            ["task dispatches replayed", r.replays],
            ["duplicate acks suppressed", r.duplicates],
            ["dead-lettered tasks", r.dead_letters],
        ]
    if r.slo_objectives:
        checks += [
            ["SLOs derived from the contract", r.slo_objectives],
            ["SLO alert transitions", len(r.slo_transitions)],
            ["page-grade alerts (fast burn)", r.slo_pages],
            ["SLA violation seconds accounted", f"{r.slo_violation_seconds:.2f}s"],
            ["adaptation cycles (observe→effect)", r.adaptation_cycles],
            [
                "first adaptation latency",
                f"{r.adaptation_latency * 1000:.0f} ms" if r.adaptation_cycles else "n/a",
            ],
            ["SLO story holds", r.slo_story_ok()],
        ]
    if cfg.with_security:
        checks += [
            [f"intents committed ({cfg.coordination})", r.mc_committed],
            ["intents vetoed", r.mc_vetoed],
            ["plan amendments (secure before admit)", r.mc_amendments],
            ["workers admitted through the gate", r.mc_admitted],
            ["insecure dispatches (the leak window)", r.insecure_dispatches],
            ["secured workers at end", r.secured_workers],
            ["still quarantined at end", r.quarantined_at_end],
            ["security story holds", r.security_story_ok()],
        ]
    out.append(table(["checkpoint", "measured"], checks))
    out.append(f"wall-clock duration: {r.duration:.2f}s")
    return "\n".join(out)
