"""Run every experiment and print/regenerate the full report set.

Usage::

    python -m repro.experiments            # run everything, print reports
    python -m repro.experiments fig4 mc    # run a subset
    python -m repro.experiments fig4 --trace-out audit.jsonl
    python -m repro.experiments fig4 --backend=process
    python -m repro.experiments fig4 --backend=dist --with-security
    python -m repro.experiments fig4 --backend=thread --serve-telemetry
    python -m repro.experiments fig4 --backend=dist --kill-coordinator

Experiment keys: fig3, fig4, loadspike, multiconcern (mc), split,
ablation, faults, stagefarm, patterns.  ``--trace-out PATH`` attaches
telemetry to the FIG4 run and writes its decision audit as JSONL;
``--backend {sim,thread,process,dist}`` selects the substrate under the
FIG4 rules; ``--with-security`` (live backends) runs the multi-concern
story — live GM + security manager, quarantine → secure → admit — and
``--coordination naive`` is its leak-window ablation;
``--serve-telemetry`` (live backends) exposes /metrics and /trace over
HTTP while the run is in flight (see
``python -m repro.experiments.fig4 --help`` for the full option set).
"""

from __future__ import annotations

import sys
from typing import Callable, Dict

from .ablation import sweep_control_period, sweep_hysteresis
from .failures import run_faults
from .fig3 import Fig3Config, run_fig3
from .fig4 import run_fig4
from .loadspike import run_loadspike
from .migration import run_migration
from .multiconcern import MultiConcernConfig, run_multiconcern
from .patterns import run_patterns
from .report import (
    render_ablation,
    render_faults,
    render_fig3,
    render_fig4,
    render_loadspike,
    render_migration,
    render_multiconcern,
    render_patterns,
    render_split,
    render_stagefarm,
)
from .split import run_split, verify_throughput_split_soundness
from .stagefarm import run_stagefarm


def _fig3() -> str:
    return render_fig3(run_fig3())


def _fig4() -> str:
    return render_fig4(run_fig4())


def _loadspike() -> str:
    return render_loadspike(run_loadspike())


def _multiconcern() -> str:
    naive = run_multiconcern(MultiConcernConfig(mode="naive"))
    two_phase = run_multiconcern(MultiConcernConfig(mode="two-phase"))
    return render_multiconcern(naive, two_phase)


def _split() -> str:
    return render_split(run_split(n_cases=100), verify_throughput_split_soundness(n_cases=200))


def _ablation() -> str:
    a = render_ablation(
        sweep_control_period(base=Fig3Config(duration=600.0)),
        "control period sweep (FIG3 scenario)",
    )
    b = render_ablation(
        sweep_hysteresis(duration=600.0), "hysteresis width sweep (0.6-centred stripe)"
    )
    return a + "\n" + b


def _faults() -> str:
    return render_faults(run_faults())


def _stagefarm() -> str:
    return render_stagefarm(run_stagefarm())


def _patterns() -> str:
    return render_patterns(run_patterns())


def _migration() -> str:
    return render_migration(run_migration())


RUNNERS: Dict[str, Callable[[], str]] = {
    "fig3": _fig3,
    "fig4": _fig4,
    "loadspike": _loadspike,
    "multiconcern": _multiconcern,
    "mc": _multiconcern,
    "split": _split,
    "ablation": _ablation,
    "faults": _faults,
    "stagefarm": _stagefarm,
    "patterns": _patterns,
    "migration": _migration,
}

DEFAULT_ORDER = (
    "fig3",
    "fig4",
    "loadspike",
    "multiconcern",
    "split",
    "ablation",
    "faults",
    "stagefarm",
    "patterns",
    "migration",
)


def main(argv: list[str]) -> int:
    trace_out = None
    backend = None
    with_security = False
    kill_coordinator = False
    coordination = None
    serve_telemetry = False
    telemetry_port = None
    keys = []
    it = iter(argv)
    for arg in it:
        if arg == "--serve-telemetry":
            serve_telemetry = True
        elif arg == "--telemetry-port":
            telemetry_port = next(it, None)
            if telemetry_port is None:
                print("--telemetry-port needs a PORT argument")
                return 2
        elif arg.startswith("--telemetry-port="):
            telemetry_port = arg.split("=", 1)[1]
        elif arg == "--trace-out":
            trace_out = next(it, None)
            if trace_out is None:
                print("--trace-out needs a PATH argument")
                return 2
        elif arg.startswith("--trace-out="):
            trace_out = arg.split("=", 1)[1]
        elif arg == "--backend":
            backend = next(it, None)
            if backend is None:
                print("--backend needs a {sim,thread,process,dist} argument")
                return 2
        elif arg.startswith("--backend="):
            backend = arg.split("=", 1)[1]
        elif arg == "--with-security":
            with_security = True
        elif arg == "--kill-coordinator":
            kill_coordinator = True
        elif arg == "--coordination":
            coordination = next(it, None)
            if coordination is None:
                print("--coordination needs a {two-phase,naive} argument")
                return 2
        elif arg.startswith("--coordination="):
            coordination = arg.split("=", 1)[1]
        else:
            keys.append(arg)
    if backend not in (None, "sim", "thread", "process", "dist"):
        print(f"unknown backend {backend!r}; choose from sim, thread, process, dist")
        return 2
    if with_security and backend in (None, "sim"):
        print("--with-security needs a live backend (--backend thread/process/dist)")
        return 2
    if kill_coordinator and backend in (None, "sim"):
        print("--kill-coordinator needs a live backend (--backend thread/process/dist)")
        return 2
    if serve_telemetry and backend in (None, "sim"):
        print("--serve-telemetry needs a live backend (--backend thread/process/dist)")
        return 2
    if telemetry_port is not None and not serve_telemetry:
        print("--telemetry-port only makes sense with --serve-telemetry")
        return 2
    keys = keys or list(DEFAULT_ORDER)
    unknown = [k for k in keys if k not in RUNNERS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; choose from {sorted(RUNNERS)}")
        return 2
    runners = dict(RUNNERS)
    if trace_out is not None or backend not in (None, "sim"):
        from .fig4 import main as fig4_main

        fig4_argv = []
        if trace_out is not None:
            fig4_argv += ["--trace-out", trace_out]
        if backend is not None:
            fig4_argv += ["--backend", backend]
        if with_security:
            fig4_argv += ["--with-security"]
        if kill_coordinator:
            fig4_argv += ["--kill-coordinator"]
        if coordination is not None:
            fig4_argv += ["--coordination", coordination]
        if serve_telemetry:
            fig4_argv += ["--serve-telemetry"]
        if telemetry_port is not None:
            fig4_argv += ["--telemetry-port", str(telemetry_port)]
        runners["fig4"] = lambda: (fig4_main(fig4_argv), "")[1]
    for key in keys:
        print(runners[key]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
