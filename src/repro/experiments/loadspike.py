"""Experiment EXT-LOAD — adaptation to external load on the worker cores.

"Autonomic adaptation has also been achieved in the case of additional
(external) load upon the cores used for the computation of the BS
application.  In this case, overloaded workers […] began to deliver
fewer results than expected and the manager reacted by adding workers to
the farm." (§4.2)

We reproduce this on the single-farm BS: the farm runs in contract, then
at ``spike_time`` an external load step hits a fraction of the worker
nodes; their effective speed drops, throughput falls below the contract,
and the Figure 5 ``CheckRateLow`` rule adds workers until the contract
is re-established.

Expected shape: throughput dip at the spike, a burst of addWorker
actions, and recovery back above the contract level — with strictly more
workers than before the spike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.behavioural import FarmBS, build_farm_bs
from ..core.contracts import MinThroughputContract
from ..sim.engine import Simulator
from ..sim.resources import ResourceManager, make_cluster
from ..sim.trace import TraceRecorder
from ..sim.workload import ConstantWork, TaskSource

__all__ = ["LoadSpikeConfig", "LoadSpikeResult", "run_loadspike"]


@dataclass
class LoadSpikeConfig:
    target_throughput: float = 0.6
    worker_rate: float = 0.2
    input_rate: float = 0.8          # matches initial capacity: no warm-up growth
    initial_degree: int = 4          # comfortably in contract at start
    pool_size: int = 20
    spike_time: float = 200.0
    spike_load: float = 0.6          # loaded nodes keep 40% of their speed
    spiked_fraction: float = 1.0     # fraction of *initial* workers hit
    duration: float = 600.0
    control_period: float = 10.0
    worker_setup_time: float = 5.0
    rate_window: float = 20.0

    @property
    def worker_work(self) -> float:
        return 1.0 / self.worker_rate


@dataclass
class LoadSpikeResult:
    config: LoadSpikeConfig
    trace: TraceRecorder
    bs: FarmBS
    workers_before: int
    workers_after: int
    throughput_before: float
    throughput_dip: float
    throughput_after: float
    spiked_nodes: List[str] = field(default_factory=list)

    @property
    def adapted(self) -> bool:
        """The manager added capacity and restored the contract."""
        return (
            self.workers_after > self.workers_before
            and self.throughput_after >= self.config.target_throughput * 0.9
        )

    @property
    def dip_visible(self) -> bool:
        return self.throughput_dip < self.throughput_before * 0.95


def run_loadspike(config: Optional[LoadSpikeConfig] = None) -> LoadSpikeResult:
    cfg = config or LoadSpikeConfig()
    sim = Simulator()
    trace = TraceRecorder()
    rm = ResourceManager(make_cluster(cfg.pool_size))

    bs = build_farm_bs(
        sim,
        rm,
        name="farm",
        worker_work=cfg.worker_work,
        initial_degree=cfg.initial_degree,
        trace=trace,
        control_period=cfg.control_period,
        worker_setup_time=cfg.worker_setup_time,
        rate_window=cfg.rate_window,
        constants_kwargs={"add_burst": 1, "max_workers": cfg.pool_size},
        spawn_worker_managers=False,
    )
    TaskSource(
        sim,
        bs.farm.input,
        rate=cfg.input_rate,
        work_model=ConstantWork(cfg.worker_work),
        name="stream",
    )
    bs.assign_contract(MinThroughputContract(cfg.target_throughput))

    # inject the external load step on a fraction of the initial workers
    initial_nodes = [w.node for w in bs.farm.workers]
    n_spiked = max(1, int(len(initial_nodes) * cfg.spiked_fraction))
    spiked = initial_nodes[:n_spiked]
    for node in spiked:
        node.load_schedule.set_load(cfg.spike_time, cfg.spike_load)

    def sample() -> None:
        snap = bs.farm.force_snapshot()
        trace.sample("workers", sim.now, snap.num_workers)
        trace.sample("throughput", sim.now, snap.departure_rate)

    sim.periodic(cfg.control_period / 2.0, sample, name="sampler")
    sim.run(until=cfg.duration)

    thr = trace.series_values("throughput")
    wrk = trace.series_values("workers")

    def window_value(points: List[Tuple[float, float]], t: float) -> float:
        best = 0.0
        for tt, v in points:
            if tt <= t:
                best = v
        return best

    before = window_value(thr, cfg.spike_time - 1.0)
    dip = min(
        (v for t, v in thr if cfg.spike_time < t <= cfg.spike_time + 120.0),
        default=before,
    )
    after = thr[-1][1] if thr else 0.0

    return LoadSpikeResult(
        config=cfg,
        trace=trace,
        bs=bs,
        workers_before=int(window_value(wrk, cfg.spike_time - 1.0)),
        workers_after=int(wrk[-1][1]) if wrk else 0,
        throughput_before=before,
        throughput_dip=dip,
        throughput_after=after,
        spiked_nodes=[n.name for n in spiked],
    )
