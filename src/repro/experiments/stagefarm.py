"""Experiment STAGE-FARM — autonomic stage-to-farm transformation (§4.2).

The scenario the paper sketches but does not implement: a *sequential*
pipeline stage becomes the bottleneck (here, the consumer's node loses
most of its speed to an external load), so no amount of farm-side
reconfiguration can restore the pipeline's contract.  The stage manager
detects it is saturated-yet-below-contract and reports
``contractUnsatisfiable``; the pipeline manager answers by transforming
the stage into a farm of stage-instances, after which the contract is
re-established.

Expected shape: throughput collapse at the load spike; a ``farmStage``
event at AM_A; recovery above the contract with the stage now running as
a farm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.adaptation import install_stage_promotion
from ..core.behavioural import PipelineApp, build_three_stage_pipeline
from ..core.contracts import ThroughputRangeContract
from ..core.events import Events
from ..sim.engine import Simulator
from ..sim.resources import ResourceManager, make_cluster
from ..sim.trace import TraceRecorder
from ..sim.workload import ConstantWork

__all__ = ["StageFarmConfig", "StageFarmResult", "run_stagefarm"]


@dataclass
class StageFarmConfig:
    contract_low: float = 0.3
    contract_high: float = 0.7
    producer_rate: float = 0.5         # inside the stripe from the start
    worker_work: float = 6.0           # 3 workers sustain 0.5 tasks/s
    consumer_work: float = 1.0         # consumer fine at full speed (1 t/s)
    consumer_load: float = 0.8         # ...until it keeps only 20%
    spike_time: float = 150.0
    farm_degree: int = 4               # stage instances after promotion
    initial_degree: int = 3
    pool_size: int = 20
    duration: float = 700.0
    control_period: float = 10.0
    worker_setup_time: float = 5.0
    rate_window: float = 20.0


@dataclass
class StageFarmResult:
    config: StageFarmConfig
    trace: TraceRecorder
    app: PipelineApp
    promoted: bool
    promotion_time: Optional[float]
    throughput_before: float
    throughput_dip: float
    throughput_after: float
    stage_farm_workers: int

    @property
    def recovered(self) -> bool:
        return (
            self.promoted
            and self.throughput_after >= self.config.contract_low * 0.95
        )

    @property
    def dip_visible(self) -> bool:
        return self.throughput_dip < self.config.contract_low


def run_stagefarm(config: Optional[StageFarmConfig] = None) -> StageFarmResult:
    cfg = config or StageFarmConfig()
    sim = Simulator()
    trace = TraceRecorder()
    rm = ResourceManager(make_cluster(cfg.pool_size))

    app = build_three_stage_pipeline(
        sim,
        rm,
        work_model=ConstantWork(cfg.worker_work),
        worker_work=cfg.worker_work,
        initial_rate=cfg.producer_rate,
        max_rate=cfg.producer_rate,   # producer is not the story here
        total_tasks=None,
        initial_degree=cfg.initial_degree,
        consumer_work=cfg.consumer_work,
        control_period=cfg.control_period,
        worker_setup_time=cfg.worker_setup_time,
        rate_window=cfg.rate_window,
        trace=trace,
    )

    promoted_farms: List = []
    install_stage_promotion(
        app.am_a,
        app.am_c,
        rm,
        degree=cfg.farm_degree,
        worker_setup_time=cfg.worker_setup_time,
        on_promoted=lambda farm, mgr: promoted_farms.append((farm, mgr)),
    )

    app.assign_contract(ThroughputRangeContract(cfg.contract_low, cfg.contract_high))

    # the consumer's core gets hammered by an external tenant
    app.consumer_stage.node.load_schedule.set_load(cfg.spike_time, cfg.consumer_load)

    def sample() -> None:
        trace.sample("pipeline_throughput", sim.now, app.pipeline.throughput())

    sim.periodic(cfg.control_period / 2.0, sample, name="sampler")
    sim.run(until=cfg.duration)

    thr = trace.series_values("pipeline_throughput")

    def at_or_before(t: float) -> float:
        best = 0.0
        for tt, v in thr:
            if tt <= t:
                best = v
        return best

    promo_ev = trace.first(Events.FARM_STAGE, actor="AM_A")
    dip_window_end = promo_ev.time + 30.0 if promo_ev else cfg.duration
    dip = min(
        (v for t, v in thr if cfg.spike_time < t <= dip_window_end),
        default=at_or_before(cfg.spike_time),
    )

    return StageFarmResult(
        config=cfg,
        trace=trace,
        app=app,
        promoted=promo_ev is not None,
        promotion_time=promo_ev.time if promo_ev else None,
        throughput_before=at_or_before(cfg.spike_time - 1.0),
        throughput_dip=dip,
        throughput_after=thr[-1][1] if thr else 0.0,
        stage_farm_workers=(
            promoted_farms[0][0].num_workers if promoted_farms else 0
        ),
    )
