"""Module-level task wrapper giving every task a supervisor-stable id.

The farm backends hand back bare result values, which is fine while the
coordinator that assigned the task ids is the one collecting the
results.  Under supervision the coordinator *dies* — a replayed task is
resubmitted to a brand-new farm incarnation with a brand-new farm-level
task id — so correlation must ride **in the payload**: the supervisor
wraps every submission in an envelope ``{"sid": ..., "fn": ..., "p":
...}`` and the farms execute :func:`run_tagged`, which unwraps it, runs
the real task function and returns a result envelope carrying the same
``sid`` back.  That single convention is what makes exactly-once
delivery provable across a coordinator crash on every backend.

``run_tagged`` is module-level on purpose: it crosses the process farm's
``spawn`` boundary by pickle and the dist farm's wire by the spec string
``repro.runtime.supervision.runner:run_tagged``.  The *inner* function
crosses the same boundaries by name (``module:qualname``), resolved and
cached per process — the identical constraint :class:`DistFarm` already
imposes, now applied uniformly so thread, process and dist incarnations
are interchangeable under one journal.

User-function exceptions are caught here and shipped as ``ok: False``
envelopes (JSON-safe), so an error result is journaled and deduplicated
exactly like a success.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..dist_worker import resolve_fn

__all__ = ["run_tagged", "tagged_envelope"]

_FN_CACHE: Dict[str, Callable[[Any], Any]] = {}


def tagged_envelope(sid: int, fn_spec: str, payload: Any) -> dict:
    """The submission envelope :func:`run_tagged` executes."""
    return {"sid": sid, "fn": fn_spec, "p": payload}


def run_tagged(envelope: dict) -> dict:
    """Execute one tagged task; the result envelope echoes the sid."""
    sid = envelope["sid"]
    spec = envelope["fn"]
    fn = _FN_CACHE.get(spec)
    if fn is None:
        fn = resolve_fn(spec)
        _FN_CACHE[spec] = fn
    try:
        return {"sid": sid, "ok": True, "value": fn(envelope["p"])}
    except Exception as exc:  # noqa: BLE001 - surfaced as an error envelope
        return {"sid": sid, "ok": False, "error": f"{type(exc).__name__}: {exc}"}
