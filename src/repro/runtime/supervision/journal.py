"""The dispatch journal: a durable, replayable record of coordinator state.

PR 5 gave every task admission, dispatch and completion a *span* and PR 4
gave every committed intent an audit record — but both live in process
memory and die with the coordinator.  This module gives those events a
durable form: an append-only JSONL file, fsync-batched, whose replay is a
pure function producing exactly the state a restarted coordinator needs:

* which tasks were admitted but not yet completed (→ redispatch them,
  exactly once);
* which results already left the farm (→ never deliver them again);
* which workers exist, and crucially which were quarantined and *never
  admitted* (→ they stay behind the admission gate across the restart);
* the contract in force and the committed two-phase intents (→ the
  rebuilt controller enforces what the dead one enforced).

Event vocabulary (``ev`` field, one JSON object per line, each stamped
with a monotonically increasing ``seq``):

``open``      journal header: farm ``name``, ``backend``, task ``fn`` spec
``epoch``     a supervisor takeover; incarnation counter ``epoch``
``submit``    task admission: ``sid`` (stable supervisor task id), ``p``
              (payload), optional ``tenant``
``complete``  completion ack *after* outward dedup: ``sid``, ``ok`` and
              ``v`` (value) or ``err`` (error text) — exactly one per sid
``worker``    worker created: ``wid`` plus ``quarantined``/``secured``
``admit``     admission gate lifted for ``wid``
``secure``    channel secured for ``wid``
``secure_all``  every channel secured (farm-wide actuator)
``remove``    worker retired: ``wid``
``contract``  contract swap: ``c`` is the wire dict of
              :mod:`repro.runtime.hierarchy.codec`
``intent``    a two-phase intent round that reached an outcome
              (journal↔audit unification with PR 4's IntentRecord)

Durability model: writes are buffered and fsynced every ``fsync_batch``
events (or on :meth:`DispatchJournal.sync`).  ``fsync_batch=1`` gives
strict per-event durability at a measured cost — BENCH_failover.json
records the batched-vs-unbatched overhead.  Replay tolerates a torn
final line (a crash mid-append), dropping everything from the first
undecodable line on.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ...obs.telemetry import NOOP, Telemetry

__all__ = ["DispatchJournal", "JournalState", "read_journal", "replay_events"]


def read_journal(path: str) -> List[dict]:
    """Load every intact event from a journal file (missing file: []).

    A torn tail — the line a crash interrupted mid-write — ends the
    read: everything before it is trusted, nothing after it is.
    """
    events: List[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    break
                if isinstance(event, dict):
                    events.append(event)
    except FileNotFoundError:
        return []
    return events


@dataclass
class JournalState:
    """The coordinator state a journal replay reconstructs.

    Replay is a pure fold of :meth:`apply` over the event sequence —
    no clock, no I/O — so replaying any prefix, crashing, and replaying
    again is idempotent by construction (the Hypothesis suite in
    ``tests/runtime/test_supervision.py`` pins this down).
    """

    name: str = ""
    backend: str = ""
    fn: str = ""
    epoch: int = 0
    next_sid: int = 0
    next_wid: int = 0
    #: sid → payload for admitted-but-not-completed tasks, in submit order
    pending: Dict[int, Any] = field(default_factory=dict)
    #: sid → tenant for pending tasks submitted with one
    tenants: Dict[int, str] = field(default_factory=dict)
    #: sid → {"ok": bool, "v": value} | {"ok": False, "err": text};
    #: first completion wins — later ones are at-least-once duplicates
    completed: Dict[int, dict] = field(default_factory=dict)
    #: wid → {"active", "quarantined", "secured"}
    workers: Dict[int, dict] = field(default_factory=dict)
    #: wire dict of the contract in force (hierarchy codec), or None
    contract: Optional[dict] = None
    intents: List[dict] = field(default_factory=list)

    def apply(self, event: dict) -> "JournalState":
        ev = event.get("ev")
        if ev == "open":
            self.name = str(event.get("name", self.name))
            self.backend = str(event.get("backend", self.backend))
            self.fn = str(event.get("fn", self.fn))
            self.epoch = int(event.get("epoch", self.epoch))
        elif ev == "epoch":
            self.epoch = max(self.epoch, int(event.get("epoch", 0)))
        elif ev == "submit":
            sid = int(event["sid"])
            self.next_sid = max(self.next_sid, sid + 1)
            if sid not in self.completed and sid not in self.pending:
                self.pending[sid] = event.get("p")
                if event.get("tenant") is not None:
                    self.tenants[sid] = str(event["tenant"])
        elif ev == "complete":
            sid = int(event["sid"])
            self.pending.pop(sid, None)
            self.tenants.pop(sid, None)
            if sid not in self.completed:  # exactly-once outward
                ok = bool(event.get("ok"))
                self.completed[sid] = (
                    {"ok": True, "v": event.get("v")}
                    if ok
                    else {"ok": False, "err": str(event.get("err", ""))}
                )
        elif ev == "worker":
            wid = int(event["wid"])
            self.next_wid = max(self.next_wid, wid + 1)
            if wid not in self.workers:
                self.workers[wid] = {
                    "active": True,
                    "quarantined": bool(event.get("quarantined")),
                    "secured": bool(event.get("secured")),
                }
        elif ev == "admit":
            w = self.workers.get(int(event["wid"]))
            if w is not None:
                w["quarantined"] = False
        elif ev == "secure":
            w = self.workers.get(int(event["wid"]))
            if w is not None:
                w["secured"] = True
        elif ev == "secure_all":
            for w in self.workers.values():
                w["secured"] = True
        elif ev == "remove":
            w = self.workers.get(int(event["wid"]))
            if w is not None:
                w["active"] = False
        elif ev == "contract":
            self.contract = event.get("c")
        elif ev == "intent":
            self.intents.append(
                {k: event.get(k) for k in ("originator", "operation", "outcome")}
            )
        return self

    # -- derived views ---------------------------------------------------
    @property
    def quarantined_wids(self) -> List[int]:
        """Workers created quarantined and never admitted (sorted)."""
        return sorted(
            wid
            for wid, w in self.workers.items()
            if w["active"] and w["quarantined"]
        )

    @property
    def admitted_wids(self) -> List[int]:
        """Live workers past the admission gate (sorted)."""
        return sorted(
            wid
            for wid, w in self.workers.items()
            if w["active"] and not w["quarantined"]
        )


def replay_events(events: Iterable[dict]) -> JournalState:
    """Fold an event sequence into the state it describes (pure)."""
    state = JournalState()
    for event in events:
        state.apply(event)
    return state


class DispatchJournal:
    """Append-only JSONL journal with batched fsync.

    Thread-safe: the supervisor's pump thread, the submitting thread and
    the controller all append concurrently.  Every event gets a ``seq``
    that continues across restarts (recovery reads the tail of an
    existing file), so the journal of a crashed-and-recovered run is one
    totally ordered story.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync_batch: int = 32,
        telemetry: Optional[Telemetry] = None,
        name: str = "journal",
    ) -> None:
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be at least 1")
        self.path = str(path)
        self.name = name
        self.fsync_batch = fsync_batch
        self.telemetry = telemetry if telemetry is not None else NOOP
        self._lock = threading.Lock()
        existing = read_journal(self.path)
        self._seq = (max((e.get("seq", -1) for e in existing), default=-1)) + 1
        self._file = open(self.path, "a", encoding="utf-8")
        self._unsynced = 0
        self.appended = 0
        self.fsyncs = 0
        self._closed = False

    def append(self, event: dict) -> int:
        """Write one event; fsyncs when the batch fills.  Returns seq."""
        with self._lock:
            if self._closed:
                raise RuntimeError("journal is closed")
            seq = self._seq
            self._seq += 1
            record = dict(event)
            record["seq"] = seq
            self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
            self.appended += 1
            self._unsynced += 1
            if self._unsynced >= self.fsync_batch:
                self._sync_locked()
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_sup_journal_events_total",
                "events appended to the dispatch journal",
            ).labels(journal=self.name, ev=str(event.get("ev", "?"))).inc()
        return seq

    def _sync_locked(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self.fsyncs += 1
        self._unsynced = 0

    def sync(self) -> None:
        """Force-flush and fsync everything appended so far."""
        with self._lock:
            if not self._closed:
                self._sync_locked()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._sync_locked()
            self._file.close()
            self._closed = True

    def replay(self) -> JournalState:
        """Read this journal back from disk and fold it into state.

        Deliberately goes through the *file*, not in-memory mirrors —
        recovery must work from exactly what a restarted process would
        find.  Call :meth:`sync` first when the writer is still alive.
        """
        return replay_events(read_journal(self.path))
