"""Self-healing coordination: dispatch journal, supervised farm, supervisor.

See :mod:`repro.runtime.supervision.journal` for the durable event log,
:mod:`repro.runtime.supervision.supervisor` for the failover machinery,
and ``docs/RESILIENCE.md`` for the supervision-tree walkthrough.
"""

from .journal import DispatchJournal, JournalState, read_journal, replay_events
from .runner import run_tagged, tagged_envelope
from .supervisor import SupervisedFarm, SupervisedWorkerHandle, Supervisor

__all__ = [
    "DispatchJournal",
    "JournalState",
    "read_journal",
    "replay_events",
    "run_tagged",
    "tagged_envelope",
    "SupervisedFarm",
    "SupervisedWorkerHandle",
    "Supervisor",
]
