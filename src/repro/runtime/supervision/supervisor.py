"""Self-healing coordination: a supervised farm that survives its coordinator.

Workers have crashed and recovered on every backend since PRs 2–4, but
the coordinator stack — dispatcher, FarmController, admission-gate state
— was a single point of failure.  This module closes that gap with the
classic supervision-tree shape (SNIPPETS.md's Erlang/OTP reference made
concrete), split into mechanism and policy exactly like the farms
themselves:

* :class:`SupervisedFarm` (mechanism) wraps one live farm *incarnation*
  (thread, process or dist) behind the ordinary
  :class:`~repro.runtime.backend.FarmBackend` surface.  Every admission,
  completion, worker event and contract swap is journaled
  (:class:`~.journal.DispatchJournal`) before it takes effect outward;
  every task is wrapped in a tagged envelope
  (:mod:`~.runner`) so results correlate by a supervisor-stable
  ``sid`` across incarnations.  ``crash_coordinator()`` simulates the
  coordinator process dying — SIGKILL semantics scoped to the
  incarnation, since a test cannot SIGKILL the interpreter it runs in:
  thread/process workers die with their coordinator, dist workers
  survive across the TCP boundary.  ``failover()`` replays the journal
  *from disk* and rebuilds a fresh incarnation: pending tasks are
  redispatched exactly-once, quarantined-but-never-admitted workers come
  back quarantined, and on the dist backend a **standby coordinator** is
  promoted onto the same port (epoch+1) so surviving workers reattach
  via the ``reattach``/``takeover`` frames.

* :class:`Supervisor` (policy) watches the coordinator heartbeat (the
  supervisor's result pump beats while alive), triggers failover when it
  goes silent, and rebuilds the :class:`~repro.runtime.controller.\
FarmController` with the journaled contract — the manager-of-managers
  the formal-semantics line of work models, made executable.

Trace continuity: the supervisor owns each task's root ``task`` span
(deterministic context from the stable sid) and passes its traceparent
down to every incarnation's ``submit``; the farm then opens a
``task.attempt`` child instead of a fresh root, so a crashed-and-
replayed task reads as ONE tree — root → attempt(epoch 0, ends
``coordinator-crashed``) → attempt(epoch 1, ends ``ok``) — in
``repro.obs.explain``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from ...obs.propagation import task_context
from ...obs.spans import Span
from ...obs.telemetry import NOOP, Telemetry
from ..backend import RuntimeFarmSnapshot
from ..controller import FarmController
from ..dist_farm import DistFarm, fn_spec
from ..farm_runtime import ThreadFarm
from ..hierarchy.codec import contract_from_wire, contract_to_wire
from ..process_farm import ProcessFarm
from .journal import DispatchJournal, JournalState
from .runner import tagged_envelope

__all__ = ["SupervisedFarm", "SupervisedWorkerHandle", "Supervisor"]

RUNNER_SPEC = "repro.runtime.supervision.runner:run_tagged"

#: backends a SupervisedFarm can incarnate
BACKENDS = ("thread", "process", "dist")


@dataclass
class _WorkerEntry:
    """Supervisor-side worker identity, stable across incarnations."""

    wid: int
    farm_id: Optional[int]  # id inside the current incarnation (None: lost)
    quarantined: bool
    secured: bool
    active: bool = True


class SupervisedWorkerHandle:
    """Stable handle onto one supervised worker.

    ``worker_id`` is the supervisor-level id, valid across coordinator
    restarts; the live per-incarnation handle (with ``dispatched``
    counters etc.) is reachable through :attr:`farm_handle`.
    """

    def __init__(self, sup: "SupervisedFarm", worker_id: int) -> None:
        self._sup = sup
        self.worker_id = worker_id

    @property
    def quarantined(self) -> bool:
        entry = self._sup._registry.get(self.worker_id)
        return bool(entry is not None and entry.quarantined)

    @property
    def farm_handle(self) -> Optional[Any]:
        return self._sup.farm_handle(self.worker_id)

    @property
    def dispatched(self) -> int:
        handle = self.farm_handle
        return getattr(handle, "dispatched", 0) if handle is not None else 0


class SupervisedFarm:
    """A :class:`FarmBackend` whose coordinator can die and be replaced.

    ``fn`` must be an importable module-level callable (``module:qualname``
    reachable) on *every* backend — the journal stores it by name so a
    recovered coordinator, possibly in another process, can re-resolve it.

    ``farm_options`` are forwarded to each incarnation's constructor
    (heartbeat/backoff tuning etc.); ``worker_reconnect_attempts`` makes
    dist workers survive coordinator restarts and reattach with capped
    backoff instead of exiting on EOF.
    """

    SUPPORTS_REQUIRE_SECURE = False

    def __init__(
        self,
        fn: Any,
        *,
        backend: str = "thread",
        journal_path: str,
        name: str = "sfarm",
        initial_workers: int = 2,
        max_workers: int = 64,
        telemetry: Optional[Telemetry] = None,
        journal_fsync_batch: int = 32,
        worker_reconnect_attempts: int = 100,
        farm_options: Optional[Dict[str, Any]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if initial_workers < 1:
            raise ValueError("need at least one worker")
        self.fn_spec = fn_spec(fn)
        self.backend = backend
        self.name = name
        self.max_workers = max_workers
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.worker_reconnect_attempts = worker_reconnect_attempts
        self.farm_options: Dict[str, Any] = dict(farm_options or {})
        self._clock = clock
        self._t0 = clock()

        self.journal = DispatchJournal(
            journal_path,
            fsync_batch=journal_fsync_batch,
            telemetry=self.telemetry,
            name=name,
        )
        self.results: "queue.Queue[Any]" = queue.Queue()
        self._lock = threading.RLock()
        self._registry: Dict[int, _WorkerEntry] = {}
        self._farm_to_wid: Dict[int, int] = {}
        self._next_wid = 0
        self._next_sid = 0
        self._payloads: Dict[int, Any] = {}  # sid → payload while pending
        self._tenants: Dict[int, str] = {}
        self._roots: Dict[int, Span] = {}  # sid → open root span
        self._delivered: Set[int] = set()
        self.submitted = 0
        self.completed = 0
        self.duplicates = 0
        self.epoch = 0
        self.failovers = 0
        self.redispatched = 0
        self.last_failover_seconds: Optional[float] = None
        self.crashed = False
        self._shutdown_done = False
        self._listen_port = 0  # dist: the port every incarnation binds
        self._survivors: List[Any] = []  # dist: adoptable worker handles
        self._survivor_map: Dict[int, int] = {}  # old farm id → wid
        self._pump_gen = 0
        self._beat = clock()

        self.journal.append(
            {"ev": "open", "name": name, "backend": backend, "fn": self.fn_spec, "epoch": 0}
        )
        self.farm = self._build_farm(initial_workers=initial_workers)
        with self._lock:
            for handle in list(self.farm.workers):
                self._register(handle.worker_id, quarantined=False, secured=False)
        self._start_pump()

    # ------------------------------------------------------------------
    # incarnation factory
    # ------------------------------------------------------------------
    def _build_farm(self, *, initial_workers: int) -> Any:
        """Construct one coordinator incarnation (named by its epoch)."""
        incarnation = f"{self.name}-e{self.epoch}"
        opts = dict(self.farm_options)
        if self.backend == "thread":
            return ThreadFarm(
                self._thread_fn(),
                initial_workers=initial_workers,
                name=incarnation,
                max_workers=self.max_workers,
                telemetry=self.telemetry,
                **{k: v for k, v in opts.items() if k in ("rate_window",)},
            )
        if self.backend == "process":
            opts.pop("connect_grace", None)
            opts.pop("start_timeout", None)
            opts.pop("max_inflight", None)
            opts.pop("codec", None)
            opts.pop("batch_size", None)
            opts.pop("max_buffered_bytes", None)
            return ProcessFarm(
                self._thread_fn(),
                initial_workers=initial_workers,
                name=incarnation,
                max_workers=self.max_workers,
                telemetry=self.telemetry,
                **opts,
            )
        farm = DistFarm(
            RUNNER_SPEC,
            initial_workers=initial_workers,
            name=incarnation,
            max_workers=self.max_workers,
            telemetry=self.telemetry,
            port=self._listen_port,
            epoch=self.epoch,
            worker_reconnect_attempts=self.worker_reconnect_attempts,
            **opts,
        )
        self._listen_port = farm.port  # the standby rebinds this port
        return farm

    def _thread_fn(self) -> Any:
        from . import runner

        return runner.run_tagged

    # ------------------------------------------------------------------
    # registry bookkeeping (lock held by callers)
    # ------------------------------------------------------------------
    def _register(self, farm_id: int, *, quarantined: bool, secured: bool) -> _WorkerEntry:
        wid = self._next_wid
        self._next_wid += 1
        entry = _WorkerEntry(
            wid=wid, farm_id=farm_id, quarantined=quarantined, secured=secured
        )
        self._registry[wid] = entry
        self._farm_to_wid[farm_id] = wid
        self.journal.append(
            {"ev": "worker", "wid": wid, "quarantined": quarantined, "secured": secured}
        )
        return entry

    def farm_handle(self, wid: int) -> Optional[Any]:
        """The current incarnation's handle for a supervisor wid."""
        with self._lock:
            entry = self._registry.get(wid)
            if entry is None or entry.farm_id is None:
                return None
            for handle in self.farm.workers:
                if handle.worker_id == entry.farm_id:
                    return handle
        return None

    # ------------------------------------------------------------------
    # time base + heartbeat
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._clock() - self._t0

    def heartbeat_age(self) -> float:
        """Seconds since the coordinator (result pump) last beat."""
        return self._clock() - self._beat

    # ------------------------------------------------------------------
    # stream
    # ------------------------------------------------------------------
    def submit(self, payload: Any, *, tenant: Optional[str] = None) -> None:
        """Journal one task admission, then dispatch it (if alive).

        A submit arriving while the coordinator is down is *accepted*:
        it is journaled, and failover redispatches it with everything
        else that was pending — admission survives the crash.
        """
        with self._lock:
            if self._shutdown_done:
                raise RuntimeError("supervised farm is shut down")
            sid = self._next_sid
            self._next_sid += 1
            self.submitted += 1
            self._payloads[sid] = payload
            event = {"ev": "submit", "sid": sid, "p": payload}
            if tenant is not None:
                self._tenants[sid] = tenant
                event["tenant"] = tenant
            self.journal.append(event)
            if self.telemetry.enabled:
                self._roots[sid] = self.telemetry.start_span(
                    "task",
                    actor=self.name,
                    context=task_context(self.name, sid),
                    task_id=sid,
                    **({"tenant": tenant} if tenant is not None else {}),
                )
            if not self.crashed:
                self._submit_to_farm(sid, payload, tenant)

    def _submit_to_farm(self, sid: int, payload: Any, tenant: Optional[str]) -> None:
        """Hand one tagged envelope to the current incarnation (lock held).

        The traceparent is minted deterministically from the stable sid,
        so every incarnation's attempt chains under the same root — even
        an incarnation created after the span-owning process restarted.
        """
        envelope = tagged_envelope(sid, self.fn_spec, payload)
        traceparent = task_context(self.name, sid).traceparent()
        self.farm.submit(envelope, tenant=tenant, traceparent=traceparent)

    def drain_results(self, count: int, timeout: float = 30.0) -> List[Any]:
        """Collect ``count`` results (completion order, exactly-once)."""
        out: List[Any] = []
        deadline = time.monotonic() + timeout
        for _ in range(count):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"collected {len(out)}/{count} results")
            try:
                out.append(self.results.get(timeout=remaining))
            except queue.Empty:
                raise TimeoutError(f"collected {len(out)}/{count} results") from None
        return out

    # ------------------------------------------------------------------
    # result pump: drains the incarnation, journals, dedups, delivers
    # ------------------------------------------------------------------
    def _start_pump(self) -> None:
        self._pump_gen += 1
        self._beat = self._clock()
        thread = threading.Thread(
            target=self._pump_loop,
            args=(self.farm, self._pump_gen),
            name=f"{self.name}-pump-e{self.epoch}",
            daemon=True,
        )
        thread.start()

    def _pump_loop(self, farm: Any, gen: int) -> None:
        while True:
            with self._lock:
                if self._shutdown_done or gen != self._pump_gen:
                    return
                self._beat = self._clock()  # the coordinator heartbeat
            try:
                res = farm.results.get(timeout=0.02)
            except queue.Empty:
                continue
            with self._lock:
                if self._shutdown_done or gen != self._pump_gen:
                    return  # stale incarnation: its results died with it
                self._deliver(res)

    def _deliver(self, res: Any) -> None:
        """Journal + dedup one result envelope, then deliver (lock held)."""
        if not isinstance(res, dict) or "sid" not in res:
            # infrastructure-level failure (e.g. the runner itself could
            # not resolve the task fn): surface it, uncorrelated
            self.results.put(res if isinstance(res, Exception) else RuntimeError(str(res)))
            return
        sid = int(res["sid"])
        if sid in self._delivered:
            self.duplicates += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "repro_sup_duplicate_results_total",
                    "results dropped because the sid already completed",
                ).labels(farm=self.name).inc()
            return
        self._delivered.add(sid)
        ok = bool(res.get("ok"))
        event: Dict[str, Any] = {"ev": "complete", "sid": sid, "ok": ok}
        if ok:
            event["v"] = res.get("value")
        else:
            event["err"] = str(res.get("error", "task failed"))
        self.journal.append(event)
        self._payloads.pop(sid, None)
        self._tenants.pop(sid, None)
        self.completed += 1
        root = self._roots.pop(sid, None)
        if root is not None:
            self.telemetry.end_span(root, outcome="ok" if ok else "error")
        self.results.put(
            res.get("value") if ok else RuntimeError(str(res.get("error", "task failed")))
        )

    # ------------------------------------------------------------------
    # crash + failover (the tentpole)
    # ------------------------------------------------------------------
    def crash_coordinator(self) -> None:
        """Simulate the coordinator process dying (SIGKILL semantics).

        The incarnation's dispatcher state is gone, its heartbeat goes
        silent, its open dispatch spans close as ``coordinator-crashed``.
        Thread/process workers live *inside* the coordinator process and
        die with it; dist workers are separate OS processes across a TCP
        boundary and survive, ready to reattach to a promoted standby.
        """
        with self._lock:
            if self.crashed or self._shutdown_done:
                return
            self.crashed = True
            self._pump_gen += 1  # the pump (and its heartbeat) dies here
            farm = self.farm
            self._survivor_map = dict(self._farm_to_wid)
        if self.backend == "dist":
            self._survivors = farm.crash()
        else:
            farm.crash()
            self._survivors = []
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_sup_coordinator_crashes_total",
                "coordinator incarnations that died",
            ).labels(farm=self.name).inc()

    def failover(self) -> JournalState:
        """Rebuild the coordinator from the journal; returns the state.

        The journal on disk — not any in-memory mirror — is the source
        of truth: it is synced, read back and replayed, and the replayed
        state decides what is redispatched, who stays quarantined and
        which contract the restarted controller enforces.
        """
        t0 = time.monotonic()
        adaptation = getattr(self.telemetry, "adaptation", None)
        if adaptation is not None:
            # the dependability concern's adaptation cycle: the crash is
            # the observed violation, the rebuilt coordinator the plan
            adaptation.violation_observed("coordinator-crashed", farm=self.name)
        with self._lock:
            if self._shutdown_done or not self.crashed:
                raise RuntimeError("failover requires a crashed coordinator")
            self.epoch += 1
            self.journal.append({"ev": "epoch", "epoch": self.epoch})
            self.journal.sync()
            state = self.journal.replay()
            span = None
            if self.telemetry.enabled:
                span = self.telemetry.start_span(
                    "sup.failover", actor=self.name, epoch=self.epoch
                )
                span.add_event(
                    "journal-replayed",
                    self.now(),
                    events=self.journal.appended,
                    pending=len(state.pending),
                    completed=len(state.completed),
                )
            self._rebuild(state, span)
            for sid, payload in state.pending.items():
                self._submit_to_farm(sid, payload, state.tenants.get(sid))
            self.redispatched += len(state.pending)
            self.crashed = False
            self.failovers += 1
            self._start_pump()
        elapsed = time.monotonic() - t0
        self.last_failover_seconds = elapsed
        if adaptation is not None:
            adaptation.plan_committed(
                "failover", farm=self.name, epoch=self.epoch,
                redispatched=len(state.pending),
            )
        if self.telemetry.enabled:
            if span is not None:
                self.telemetry.end_span(
                    span,
                    outcome="recovered",
                    redispatched=len(state.pending),
                    quarantined=len(state.quarantined_wids),
                    latency=elapsed,
                )
            metrics = self.telemetry.metrics
            metrics.counter(
                "repro_sup_failovers_total", "coordinator failovers completed"
            ).labels(farm=self.name).inc()
            metrics.counter(
                "repro_sup_redispatched_total",
                "pending tasks redispatched by a failover",
            ).labels(farm=self.name).inc(len(state.pending))
            metrics.gauge(
                "repro_sup_epoch", "current coordinator incarnation"
            ).labels(farm=self.name).set(self.epoch)
            metrics.histogram(
                "repro_sup_failover_seconds", "journal replay + rebuild latency"
            ).labels(farm=self.name).observe(elapsed)
        return state

    def _rebuild(self, state: JournalState, span: Optional[Span]) -> None:
        """Reconstruct the worker set for a new incarnation (lock held)."""
        admitted = state.admitted_wids
        quarantined = state.quarantined_wids
        self._farm_to_wid = {}
        for entry in self._registry.values():
            entry.farm_id = None

        if self.backend == "dist":
            # standby promotion: same port, epoch+1, surviving worker
            # processes adopted so they reattach instead of respawning
            self.farm = self._build_farm(initial_workers=0)
            reattached = 0
            for old in self._survivors:
                wid = self._survivor_map.get(old.worker_id)
                worker_state = state.workers.get(wid) if wid is not None else None
                if worker_state is None or not worker_state["active"]:
                    continue
                self.farm.adopt_worker(
                    old.worker_id,
                    process=old.process,
                    quarantined=worker_state["quarantined"],
                )
                self._bind(wid, old.worker_id)
                reattached += 1
            self._survivors = []
            # workers that died with (or before) the coordinator are gone
            # for good; journal their loss and guarantee serving capacity
            for wid in admitted + quarantined:
                if self._registry[wid].farm_id is None:
                    self._registry[wid].active = False
                    self.journal.append({"ev": "remove", "wid": wid})
            if not any(
                e.active and not e.quarantined and e.farm_id is not None
                for e in self._registry.values()
            ):
                handle = self.farm.add_worker()
                self._register(handle.worker_id, quarantined=False, secured=False)
            if span is not None:
                span.add_event(
                    "standby-promoted", self.now(),
                    port=self._listen_port, adopted=reattached,
                )
        else:
            # thread/process workers died with the coordinator: spawn a
            # fresh set matching the journaled partition — admitted
            # capacity admitted, gated workers gated
            self.farm = self._build_farm(initial_workers=max(1, len(admitted)))
            fresh = [h.worker_id for h in self.farm.workers]
            for wid, farm_id in zip(admitted, fresh):
                self._bind(wid, farm_id)
            for farm_id in fresh[len(admitted):]:
                self._register(farm_id, quarantined=False, secured=False)
            for wid in quarantined:
                handle = self.farm.add_worker(quarantined=True)
                self._bind(wid, handle.worker_id)
            if span is not None:
                span.add_event(
                    "farm-rebuilt", self.now(),
                    admitted=len(admitted), quarantined=len(quarantined),
                )
        # re-secure what the journal says was secured (dist excepted when
        # the worker has not reattached yet: it will bounce or be gated)
        for wid, worker_state in state.workers.items():
            entry = self._registry.get(wid)
            if entry is None or not entry.active or entry.farm_id is None:
                continue
            entry.quarantined = bool(worker_state["quarantined"])
            if worker_state["secured"] and self.backend != "dist":
                self.farm.secure_worker(entry.farm_id)
                entry.secured = True

    def _bind(self, wid: int, farm_id: int) -> None:
        entry = self._registry[wid]
        entry.farm_id = farm_id
        self._farm_to_wid[farm_id] = wid

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def snapshot(self) -> RuntimeFarmSnapshot:
        snap = self.farm.snapshot()
        with self._lock:
            completed = self.completed
            pending = max(0, self.submitted - self.completed)
        return RuntimeFarmSnapshot(
            time=self.now(),
            arrival_rate=snap.arrival_rate,
            departure_rate=snap.departure_rate,
            num_workers=snap.num_workers,
            queue_lengths=snap.queue_lengths,
            queue_variance=snap.queue_variance,
            completed=completed,
            pending=pending,
            mean_latency=snap.mean_latency,
            quarantined=snap.quarantined,
        )

    @property
    def num_workers(self) -> int:
        return self.farm.num_workers

    @property
    def quarantined_workers(self) -> int:
        return self.farm.quarantined_workers

    # ------------------------------------------------------------------
    # actuators (journaled, sup-id addressed)
    # ------------------------------------------------------------------
    def add_worker(
        self, *, secured: bool = False, quarantined: bool = False
    ) -> SupervisedWorkerHandle:
        with self._lock:
            if self.crashed:
                raise RuntimeError("coordinator is down; failover pending")
            handle = self.farm.add_worker(secured=secured, quarantined=quarantined)
            entry = self._register(
                handle.worker_id, quarantined=quarantined, secured=secured
            )
            return SupervisedWorkerHandle(self, entry.wid)

    def admit_worker(self, worker_id: int) -> bool:
        """Lift the gate for a supervisor-level worker id (journaled)."""
        with self._lock:
            entry = self._registry.get(worker_id)
            if entry is None or not entry.active or entry.farm_id is None:
                return False
            if not self.farm.admit_worker(entry.farm_id):
                return False
            entry.quarantined = False
            self.journal.append({"ev": "admit", "wid": worker_id})
            return True

    def secure_worker(self, worker_id: int) -> bool:
        with self._lock:
            entry = self._registry.get(worker_id)
            if entry is None or not entry.active or entry.farm_id is None:
                return False
            farm_id = entry.farm_id
        if not self.farm.secure_worker(farm_id):
            return False
        with self._lock:
            entry.secured = True
            self.journal.append({"ev": "secure", "wid": worker_id})
        return True

    def remove_worker(self) -> Optional[Any]:
        with self._lock:
            victim = self.farm.remove_worker()
            if victim is None:
                return None
            wid = self._farm_to_wid.get(victim.worker_id)
            if wid is not None:
                self._registry[wid].active = False
                self.journal.append({"ev": "remove", "wid": wid})
            return victim

    def balance_load(self) -> int:
        if self.crashed:
            return 0
        return self.farm.balance_load()

    def secure_all(self) -> None:
        with self._lock:
            self.farm.secure_all()
            for entry in self._registry.values():
                entry.secured = True
            self.journal.append({"ev": "secure_all"})

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        with self._lock:
            if self._shutdown_done:
                return
            self._pump_gen += 1  # stop the pump first
            farm = self.farm
            crashed = self.crashed
        if not crashed:
            # deliver completions that raced shutdown, then stop the farm
            while True:
                try:
                    res = farm.results.get_nowait()
                except queue.Empty:
                    break
                with self._lock:
                    self._deliver(res)
            farm.shutdown(timeout)
        with self._lock:
            self._shutdown_done = True
            for root in self._roots.values():
                self.telemetry.end_span(root, outcome="abandoned")
            self._roots.clear()
        self.journal.close()
        if self.telemetry.enabled:
            self.telemetry.flush()


class Supervisor:
    """Heartbeat-watching restart policy over a :class:`SupervisedFarm`.

    Owns the :class:`FarmController` steering the supervised farm — the
    controller is part of the coordinator stack, so
    :meth:`crash_coordinator` kills it too, and every failover rebuilds
    it with the contract the journal proves was in force.
    """

    def __init__(
        self,
        farm: SupervisedFarm,
        *,
        contract: Optional[Any] = None,
        control_period: float = 0.2,
        check_period: float = 0.05,
        heartbeat_timeout: float = 1.0,
        max_workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        name: Optional[str] = None,
    ) -> None:
        self.farm = farm
        self.contract = contract
        self.max_workers = max_workers
        self.control_period = control_period
        self.check_period = check_period
        self.heartbeat_timeout = heartbeat_timeout
        self.telemetry = telemetry if telemetry is not None else farm.telemetry
        self.name = name or f"{farm.name}-sup"
        self.controller: Optional[FarmController] = None
        self.failovers = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._restart_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "Supervisor":
        if self.contract is not None:
            self.farm.journal.append(
                {"ev": "contract", "c": contract_to_wire(self.contract)}
            )
            self.controller = self._make_controller(self.contract)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._monitor_loop, name=f"{self.name}-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
        if self.controller is not None:
            self.controller.stop(timeout)

    def _make_controller(self, contract: Any) -> FarmController:
        # the name is deliberately epoch-stable: the manager *role*
        # outlives any coordinator incarnation, so its gauges form one
        # continuous series the SLO layer can judge across failovers
        # (each incarnation is still distinguishable via repro_sup_epoch
        # and the sup.failover spans)
        return FarmController(
            self.farm,
            contract,
            control_period=self.control_period,
            max_workers=self.max_workers,
            telemetry=self.telemetry,
            name=f"{self.name}-am",
        ).start()

    # -- contract (journaled swap) ---------------------------------------
    def assign_contract(self, contract: Any) -> None:
        """Swap the enforced contract; the swap itself is journaled, so
        a post-crash rebuild enforces the *new* contract."""
        if self.controller is not None:
            self.controller.assign_contract(contract)
        self.contract = contract
        self.farm.journal.append({"ev": "contract", "c": contract_to_wire(contract)})

    # -- crash + restart -------------------------------------------------
    def crash_coordinator(self) -> None:
        """Kill the whole coordinator stack: controller + dispatcher."""
        if self.controller is not None:
            # simulated SIGKILL: the control thread is told nothing and
            # simply stops being scheduled (stop event, no graceful join)
            self.controller._stop.set()
        self.farm.crash_coordinator()

    def restart(self) -> JournalState:
        """One failover: journal replay, rebuild, controller restart."""
        with self._restart_lock:
            state = self.farm.failover()
            contract = self.contract
            if state.contract is not None:
                contract = contract_from_wire(state.contract)
                self.contract = contract
            if contract is not None:
                self.controller = self._make_controller(contract)
            self.failovers += 1
            return state

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.check_period):
            farm = self.farm
            if farm._shutdown_done:
                return
            stale = farm.heartbeat_age() > self.heartbeat_timeout
            if not (farm.crashed or stale):
                continue
            try:
                if not farm.crashed:
                    # silent wedge: declare the coordinator dead first
                    self.crash_coordinator()
                self.restart()
            except Exception:  # noqa: BLE001 - the supervisor must survive
                continue
