"""The DistFarm wire protocol, version 4: binary frames, codecs, batches.

Protocol v4 replaces the v3 per-task JSON wire with a compact binary
frame whose payload codec is negotiated per connection, and whose data
plane moves *batches* of tasks and results so dispatch and acks
amortise syscalls.  v3 peers keep working: both frame layouts coexist
on one socket, distinguished by the first byte, and the handshake
downgrades a session to the older peer's dialect.

Frame layouts
-------------

v4 (this release)::

    0      1      2      3..6        7..
    +------+------+------+-----------+---------------------+
    | 0xD4 | type | flags| length u32| body (codec-encoded)|
    +------+------+------+-----------+---------------------+

    type   one of :data:`FRAME_TYPES` (``hello``, ``task_batch``, ...)
    flags  low nibble: body codec id (:data:`CODEC_IDS`);
           bit 0x10 (:data:`FLAG_ENC`): body encrypted under the shared
           channel key *before* framing (secured channels)
    length body byte count, refused above :data:`MAX_FRAME` **before**
           any body allocation

v3 (legacy, still accepted)::

    0..3         4..
    +------------+--------------------+
    | length u32 | UTF-8 JSON object  |
    +------------+--------------------+

The magic byte ``0xD4`` can never open a legal v3 frame — a v3 length
starting ``0xD4`` would announce a >3 GiB body, far beyond
:data:`MAX_FRAME` — so :func:`read_frame` sniffs one byte and parses
either layout.  Malformed/EOF frames return ``None`` ("the peer is
gone"); *protocol violations* — oversized lengths, unknown frame types
or codec ids, undecodable bodies, empty batches — raise
:class:`ProtocolError` with a named diagnosis, and both endpoints treat
that as a peer fault (disconnect + replay), never a hang.

Codec negotiation
-----------------

The worker's ``hello`` carries ``codecs``, the payload codecs it can
speak, in preference order.  The coordinator answers ``welcome`` with
the single ``codec`` the session will use for data frames
(``task``/``task_batch`` coordinator→worker, ``result``/``result_batch``
worker→coordinator); control frames always travel as codec 0 (json) so
the handshake itself needs no negotiation.

=========  ==  ========================  =================================
codec      id  wire format               offered to
=========  ==  ========================  =================================
json        0  UTF-8 JSON                everyone (the compat fallback)
pickle      1  pickle HIGHEST_PROTOCOL   trusted workers only — ones this
                                         coordinator spawned or adopted
                                         (unpickling runs code; a remote
                                         attacher never gets it)
msgpack     2  msgpack (if importable)   everyone; gated on the optional
                                         dependency being present
=========  ==  ========================  =================================

A peer offering only unknown codec names is refused with an ``error``
frame naming them; :func:`read_frame` additionally enforces a
per-connection ``allowed`` codec set, so a peer that negotiated json
cannot smuggle a pickle-flagged frame past the boundary.

Frame vocabulary (``type``)
---------------------------

worker → coordinator
    ``hello``        first frame; worker id (−1 = "assign me one"),
                     ``proto`` (the sender's :data:`PROTOCOL_VERSION`)
                     and, from v4, ``codecs`` (see above).  Mismatched
                     versions are refused with an ``error`` frame naming
                     both; a v3 peer (proto 3) is *accepted* and served
                     the v3 dialect: json payloads, one task per frame
    ``reattach``     reconnect after losing the coordinator: like
                     ``hello`` but asserts an already-assigned worker id
                     and carries the cumulative ``completed`` counter
    ``hb``           heartbeat, with the cumulative completed counter
    ``result``       one task outcome (``value`` or ``error`` text, the
                     cumulative ``completed`` counter and optionally
                     ``span``, the worker-side execution span record)
    ``result_batch`` v4: ``results`` — a non-empty list of result
                     entries (each shaped like a ``result`` body) plus
                     one ``completed`` counter for the whole batch; one
                     frame acks many tasks
    ``secured``      answer to a ``secure`` challenge (``proof``)
    ``refused``      task(s) bounced before execution — admission gate
                     (``--require-secure``) or epoch fencing ("stale
                     epoch"); carries ``task_id`` or, for a bounced
                     batch, ``task_ids``
    ``bye``          graceful exit after a poison frame

coordinator → worker
    ``welcome``      hello ack: worker id, ``proto`` (downgraded to the
                     peer's version for a v3 peer), ``epoch``, and for
                     v4 sessions the negotiated ``codec``
    ``takeover``     ``reattach`` ack from a promoted standby; same
                     shape as ``welcome``.  Epoch fencing applies to
                     batches exactly as to single tasks: a worker whose
                     highest seen epoch exceeds a session's refuses that
                     session's ``task`` *and* ``task_batch`` frames
    ``error``        terminal refusal with human-readable ``error`` text
                     (protocol-version mismatch, unknown codecs)
    ``task``         one task: ``task_id``, ``payload`` and optionally
                     ``traceparent``.  On the v3 dialect the payload of
                     a secured channel is individually encrypted and
                     flagged ``enc``; on v4 the whole frame body is
                     encrypted instead (:data:`FLAG_ENC`)
    ``task_batch``   v4: ``tasks`` — a non-empty list of entries
                     (``task_id``, ``payload``, optional ``tp``
                     traceparent), one frame dispatching a whole window;
                     traceparents ride inside the batch so every entry
                     still chains under its own dispatch span
    ``secure``       secure-channel handshake challenge
    ``poison``       finish already-received tasks, send ``bye``, exit

The shard hierarchy (:mod:`repro.runtime.hierarchy`) reuses the v3
frame layer on its low-rate parent ↔ shard-agent management links with
four more types (``contract``/``poll``/``report``/``violation``); the
management plane carries a handful of frames per second, so it stays on
the self-describing dialect deliberately.

Secured payloads use the same toy cipher as the thread and process
farms (:mod:`repro.security.crypto`), so ``secure_all()`` has the same
observable cost on every substrate.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import struct
from typing import Any, Iterable, Optional, Sequence, Tuple

from ..security.crypto import CryptoError, decrypt, encrypt

try:  # optional fast codec; never a hard dependency
    import msgpack as _msgpack
except ImportError:  # pragma: no cover - depends on the environment
    _msgpack = None

__all__ = [
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "COMPAT_PROTOCOLS",
    "SECRET",
    "MAGIC_V4",
    "FLAG_ENC",
    "FRAME_TYPES",
    "FRAME_IDS",
    "CODEC_IDS",
    "CODEC_NAMES",
    "ProtocolError",
    "available_codecs",
    "negotiate_codec",
    "encode_frame",
    "encode_frame_v4",
    "read_frame",
    "read_frame_ex",
    "version_mismatch_error",
    "encode_payload",
    "decode_payload",
    "make_challenge",
    "prove_challenge",
    "verify_proof",
]

#: wire protocol generation.  Version 2 added the handshake version
#: field plus the hierarchy frames; version 3 added coordinator failover
#: (``reattach``/``takeover``, sticky epochs).  Version 4 replaces the
#: per-task JSON wire with the binary frame header above, negotiated
#: payload codecs and ``task_batch``/``result_batch`` frames.  The
#: coordinator still serves v3 peers (:data:`COMPAT_PROTOCOLS`); peers
#: outside that set are refused up front with an ``error`` frame.
PROTOCOL_VERSION = 4

#: protocol versions a v4 coordinator accepts at the handshake.  A v3
#: peer gets the v3 dialect for the whole session: json frames, one
#: task per frame, per-payload encryption.
COMPAT_PROTOCOLS = (3, 4)

#: shared toy-cipher key (same key the other substrates use)
SECRET = b"repro-channel-key"

#: refuse frames above this size — a corrupt length prefix must not
#: make either side try to allocate gigabytes
MAX_FRAME = 64 * 1024 * 1024

#: first byte of every v4 frame; can never open a legal v3 frame (a v3
#: length beginning 0xD4 would exceed MAX_FRAME by two orders)
MAGIC_V4 = 0xD4

#: flags bit: the body was encrypted under :data:`SECRET` before framing
FLAG_ENC = 0x10

_CODEC_MASK = 0x0F

_HEADER_V3 = struct.Struct(">I")
_HEADER_V4 = struct.Struct(">BBBI")  # magic, type, flags, body length

#: v4 frame-type registry (id ↔ name).  Ids are wire format: never
#: renumber, only append.
FRAME_TYPES = {
    1: "hello",
    2: "welcome",
    3: "error",
    4: "task",
    5: "result",
    6: "secure",
    7: "secured",
    8: "refused",
    9: "poison",
    10: "bye",
    11: "hb",
    12: "reattach",
    13: "takeover",
    14: "task_batch",
    15: "result_batch",
    16: "contract",
    17: "poll",
    18: "report",
    19: "violation",
}
FRAME_IDS = {name: fid for fid, name in FRAME_TYPES.items()}

#: codec registry (name ↔ flags nibble).  Ids are wire format.
CODEC_IDS = {"json": 0, "pickle": 1, "msgpack": 2}
CODEC_NAMES = {cid: name for name, cid in CODEC_IDS.items()}

#: codecs whose *decode* path executes no peer-controlled code; safe to
#: negotiate with workers this coordinator did not spawn
_SAFE_CODECS = ("msgpack", "json")

#: coordinator preference order for workers it spawned/adopted itself
_TRUSTED_PREFERENCE = ("pickle", "msgpack", "json")


class ProtocolError(RuntimeError):
    """A structurally parseable frame that violates the protocol.

    Distinct from a ``None`` return (EOF / peer gone): a
    ``ProtocolError`` names what the peer did wrong — oversized length,
    unknown frame type or codec, undecodable body, empty batch — and
    both endpoints treat it as a peer *fault* (disconnect, replay its
    work elsewhere), never as something to wait out.
    """


def available_codecs() -> Tuple[str, ...]:
    """Codecs this interpreter can speak, fastest first."""
    if _msgpack is not None:
        return ("pickle", "msgpack", "json")
    return ("pickle", "json")


def negotiate_codec(
    offered: Iterable[Any],
    *,
    trusted: bool,
    allowed: str = "auto",
) -> str:
    """Pick the session codec from a peer's ``codecs`` offer.

    ``trusted`` gates the pickle fast path: unpickling executes
    arbitrary code, so only workers the coordinator spawned (or adopted
    across a failover) are offered it; everyone else negotiates down the
    safe list.  ``allowed`` restricts the coordinator side to one named
    codec (``"auto"``: no restriction).  Raises :class:`ProtocolError`
    with a named diagnosis when nothing mutually acceptable remains.
    """
    offered_names = [str(name) for name in offered]
    known = [n for n in offered_names if n in CODEC_IDS]
    unknown = [n for n in offered_names if n not in CODEC_IDS]
    preference = _TRUSTED_PREFERENCE if trusted else _SAFE_CODECS
    if allowed != "auto":
        if allowed not in CODEC_IDS:
            raise ProtocolError(
                f"unknown codec {allowed!r} configured on the coordinator; "
                f"supported codecs: {', '.join(sorted(CODEC_IDS))}"
            )
        preference = (allowed,)
    usable = set(available_codecs())
    for name in preference:
        if name in known and name in usable:
            return name
    detail = f"peer offered [{', '.join(offered_names) or 'nothing'}]"
    if unknown:
        detail += f" (unknown codec(s): {', '.join(unknown)})"
    if "pickle" in known and not trusted:
        detail += "; pickle is only negotiated with coordinator-spawned workers"
    raise ProtocolError(
        f"no mutually acceptable codec: {detail}; "
        f"this side accepts [{', '.join(preference)}]"
    )


# ----------------------------------------------------------------------
# body codecs
# ----------------------------------------------------------------------
def _encode_body(obj: Any, codec: str) -> bytes:
    if codec == "json":
        return json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if codec == "pickle":
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if codec == "msgpack":
        if _msgpack is None:
            raise ProtocolError("msgpack codec negotiated but not importable")
        return _msgpack.packb(obj, use_bin_type=True)
    raise ProtocolError(
        f"unknown codec {codec!r}; supported codecs: {', '.join(sorted(CODEC_IDS))}"
    )


def _decode_body(data: bytes, codec: str) -> Any:
    try:
        if codec == "json":
            return json.loads(data.decode("utf-8"))
        if codec == "pickle":
            return pickle.loads(data)
        if codec == "msgpack":
            if _msgpack is None:
                raise ProtocolError("msgpack codec negotiated but not importable")
            return _msgpack.unpackb(data, raw=False)
    except ProtocolError:
        raise
    except Exception as exc:  # noqa: BLE001 - torn/corrupt body
        raise ProtocolError(f"undecodable {codec} frame body: {exc}") from exc
    raise ProtocolError(
        f"unknown codec {codec!r}; supported codecs: {', '.join(sorted(CODEC_IDS))}"
    )


def _validate_batch(message: dict) -> None:
    """Empty batches are a protocol error, on both encode and decode."""
    mtype = message.get("type")
    if mtype == "task_batch" and not message.get("tasks"):
        raise ProtocolError("empty task_batch frame")
    if mtype == "result_batch" and not message.get("results"):
        raise ProtocolError("empty result_batch frame")


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(message: dict) -> bytes:
    """Serialise one message to a *v3* length-prefixed JSON frame.

    Still the dialect of v3 worker sessions and of the hierarchy's
    management links; the task data plane uses :func:`encode_frame_v4`.
    """
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER_V3.pack(len(body)) + body


def encode_frame_v4(
    message: dict, *, codec: str = "json", secured: bool = False
) -> bytes:
    """Serialise one message to a v4 binary frame.

    The ``type`` key travels in the header, not the body; ``secured``
    encrypts the whole encoded body under the shared channel key and
    sets :data:`FLAG_ENC`.
    """
    mtype = message.get("type")
    fid = FRAME_IDS.get(mtype)
    if fid is None:
        raise ProtocolError(f"unknown frame type {mtype!r}")
    _validate_batch(message)
    if codec not in CODEC_IDS:
        raise ProtocolError(
            f"unknown codec {codec!r}; supported codecs: {', '.join(sorted(CODEC_IDS))}"
        )
    body_obj = {k: v for k, v in message.items() if k != "type"}
    body = _encode_body(body_obj, codec)
    flags = CODEC_IDS[codec]
    if secured:
        body = encrypt(SECRET, body)
        flags |= FLAG_ENC
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER_V4.pack(MAGIC_V4, fid, flags, len(body)) + body


async def read_frame_ex(
    reader, *, allowed: Optional[Sequence[str]] = None
) -> Tuple[Optional[dict], int]:
    """Read one frame (either layout); returns ``(message, wire)``.

    ``wire`` is 3 or 4 — which frame layout the peer used — so callers
    can answer in kind.  ``(None, wire)`` means EOF/garbage ("the peer
    is gone").  ``allowed`` restricts the codecs this connection may
    use (after negotiation, a json session must not receive pickle
    frames); violations raise :class:`ProtocolError`, as do oversized
    lengths (checked *before* the body is read or allocated), unknown
    frame types/codec ids, undecodable bodies and empty batches.
    """
    import asyncio

    try:
        first = await reader.readexactly(1)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None, 3
    if first[0] == MAGIC_V4:
        try:
            rest = await reader.readexactly(_HEADER_V4.size - 1)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None, 4
        fid, flags, length = struct.unpack(">BBI", rest)
        mtype = FRAME_TYPES.get(fid)
        if mtype is None:
            raise ProtocolError(f"unknown v4 frame type id {fid}")
        codec = CODEC_NAMES.get(flags & _CODEC_MASK)
        if codec is None:
            raise ProtocolError(f"unknown codec id {flags & _CODEC_MASK}")
        if allowed is not None and codec not in allowed:
            raise ProtocolError(
                f"codec {codec!r} not negotiated on this connection "
                f"(allowed: {', '.join(allowed)})"
            )
        if length > MAX_FRAME:
            # refuse before reading (or allocating) the body
            raise ProtocolError(
                f"v4 frame of {length} bytes exceeds MAX_FRAME ({MAX_FRAME})"
            )
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None, 4
        if flags & FLAG_ENC:
            try:
                body = decrypt(SECRET, body)
            except (CryptoError, ValueError) as exc:
                raise ProtocolError(f"undecryptable frame body: {exc}") from exc
        message = _decode_body(body, codec)
        if not isinstance(message, dict):
            raise ProtocolError(f"v4 {mtype} body is not a mapping")
        message["type"] = mtype
        _validate_batch(message)
        return message, 4
    # ---- v3: the first byte is the high byte of a 32-bit length ----
    try:
        rest = await reader.readexactly(_HEADER_V3.size - 1)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None, 3
    (length,) = _HEADER_V3.unpack(first + rest)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"v3 frame of {length} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None, 3
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None, 3
    return (message, 3) if isinstance(message, dict) else (None, 3)


async def read_frame(
    reader, *, allowed: Optional[Sequence[str]] = None
) -> Optional[dict]:
    """Read one frame from an ``asyncio.StreamReader`` (either layout).

    Returns ``None`` on a clean or dirty EOF — the caller treats both as
    "the peer is gone"; distinguishing them is the supervisor's job (a
    dead connection with outstanding tasks means replay either way).
    Raises :class:`ProtocolError` on protocol violations; see
    :func:`read_frame_ex`.
    """
    message, _ = await read_frame_ex(reader, allowed=allowed)
    return message


def version_mismatch_error(peer_proto: Any, *, role: str) -> dict:
    """The ``error`` frame refusing a peer speaking the wrong protocol."""
    spoke = "no protocol version" if peer_proto is None else f"protocol version {peer_proto}"
    return {
        "type": "error",
        "error": (
            f"protocol version mismatch: this {role} speaks version "
            f"{PROTOCOL_VERSION}, but the peer announced {spoke}; "
            "upgrade both sides to the same repro release"
        ),
        "proto": PROTOCOL_VERSION,
    }


def encode_payload(payload: Any, *, secured: bool) -> Any:
    """v3 dialect: prepare one task payload (encrypt + base64 if secured).

    The v4 dialect encrypts the whole frame body instead
    (:data:`FLAG_ENC`); this per-payload path survives for v3 worker
    sessions and the tests that pin that wire.
    """
    if not secured:
        return payload
    clear = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return base64.b64encode(encrypt(SECRET, clear)).decode("ascii")


def decode_payload(payload: Any, *, secured: bool) -> Any:
    """Inverse of :func:`encode_payload` (runs worker-side)."""
    if not secured:
        return payload
    clear = decrypt(SECRET, base64.b64decode(payload.encode("ascii")))
    return json.loads(clear.decode("utf-8"))


# ----------------------------------------------------------------------
# secure-channel handshake (challenge/response under the shared key)
# ----------------------------------------------------------------------
#
# The coordinator sends a fresh random ``challenge`` in a ``secure``
# frame; the worker answers with ``prove_challenge(challenge)`` in a
# ``secured`` frame; the coordinator checks it with ``verify_proof``.
# Only a peer holding :data:`SECRET` can produce a valid proof, so a
# completed handshake demonstrates both ends share the key *before* any
# encrypted task payload travels — the mechanism the two-phase intent
# protocol's commit step waits on (see docs/MULTICONCERN.md).


def make_challenge() -> str:
    """A fresh random challenge (base64 text, safe inside JSON)."""
    return base64.b64encode(os.urandom(16)).decode("ascii")


def prove_challenge(challenge: str) -> str:
    """Worker-side: prove key possession by encrypting the challenge."""
    return base64.b64encode(encrypt(SECRET, challenge.encode("ascii"))).decode("ascii")


def verify_proof(challenge: str, proof: str) -> bool:
    """Coordinator-side: does ``proof`` decrypt back to ``challenge``?"""
    try:
        clear = decrypt(SECRET, base64.b64decode(proof.encode("ascii")))
    except (CryptoError, ValueError, UnicodeEncodeError):
        return False
    return clear == challenge.encode("ascii")
