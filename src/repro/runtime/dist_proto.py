"""The DistFarm wire protocol: length-prefixed JSON frames over TCP.

One frame is a 4-byte big-endian unsigned length followed by a UTF-8
JSON object.  JSON (not pickle) is deliberate: the coordinator accepts
connections from worker processes it did not spawn — possibly on other
hosts, possibly not even CPython — and a self-describing, inspectable
wire format keeps that boundary safe and debuggable (`tcpdump` shows
the actual protocol).  The cost is that task payloads and results must
be JSON-serialisable; the farm surfaces a clear error when they are not.

Frame vocabulary (``type`` field):

worker → coordinator
    ``hello``    first frame; carries the worker id (−1 = "assign me one")
                 and ``proto``, the sender's :data:`PROTOCOL_VERSION`.
                 The coordinator refuses a mismatched (or missing)
                 version with an ``error`` frame naming both versions —
                 a clear diagnosis instead of the opaque mid-stream
                 failure an unknown frame type used to produce
    ``hb``       heartbeat, with the cumulative completed-task counter
    ``result``   one task outcome: ``value`` on success, ``error`` text
                 on failure (the coordinator rehydrates it as an
                 exception object in the results stream); optionally
                 ``span``, the worker-side execution span record
                 (trace/span/parent ids, name, actor, epoch start/end,
                 attributes) the coordinator re-parents into its trace
                 store
    ``secured``  answer to a ``secure`` challenge; carries ``proof``,
                 the base64 of the challenge encrypted under the shared
                 key — only a holder of the key can produce it
    ``refused``  a task bounced by a worker running ``--require-secure``
                 before the handshake completed, or by a worker that has
                 already attached to a *newer* coordinator epoch and
                 receives a task from a stale predecessor; carries
                 ``task_id`` and ``reason`` (the coordinator replays it
                 elsewhere)
    ``bye``      graceful exit after a poison frame
    ``reattach`` reconnect after losing the coordinator (v3): like
                 ``hello`` but asserts an *already assigned* worker id
                 and carries the cumulative ``completed`` counter; a
                 promoted standby reactivates the worker's registration
                 instead of allocating a fresh one

coordinator → worker
    ``welcome``  hello ack; carries the (possibly assigned) worker id
                 and the coordinator's ``proto`` version (a worker
                 tolerates its absence, so pre-versioning test
                 harnesses keep working; a *mismatched* version makes
                 the worker exit with a clear message) and, from v3,
                 ``epoch`` — the coordinator incarnation counter
    ``takeover`` ``reattach`` ack from a promoted standby (v3): same
                 shape as ``welcome`` (worker id, ``proto``, ``epoch``);
                 a worker whose highest seen epoch exceeds a session's
                 announced epoch refuses that session's task frames
    ``error``    terminal refusal; carries human-readable ``error``
                 text (sent before closing, e.g. on a protocol-version
                 mismatch)
    ``task``     one task: ``task_id``, ``payload``, ``enc`` (when the
                 channel is secured the payload is the base64 of the
                 encrypted JSON bytes); optionally ``traceparent``, the
                 W3C-style trace context of the coordinator's dispatch
                 span (``00-<32hex trace>-<16hex span>-01``) under which
                 the worker records its execution span
    ``secure``   secure-channel handshake: carries a fresh ``challenge``
                 the worker must prove it can encrypt
    ``poison``   finish already-received tasks, send ``bye``, exit

The shard hierarchy (:mod:`repro.runtime.hierarchy`) reuses this frame
layer on its parent ↔ shard-agent links with four more types:

parent → shard agent
    ``contract``   (re)assign the shard's sub-contract; carries the
                   codec dict of :mod:`repro.runtime.hierarchy.codec`
    ``poll``       ask for a fresh shard report

shard agent → parent
    ``report``     one :class:`~repro.runtime.hierarchy.shard.ShardReport`
                   snapshot (includes ``violation`` entries raised by
                   the shard's Figure 5 controller since the last poll)
    ``violation``  standalone violation notice (same payload shape as a
                   report's ``violations`` entry), pushed with a report
                   when the shard wants immediate parent attention

Secured payloads use the same toy cipher as the thread and process
farms (:mod:`repro.security.crypto`), so ``secure_all()`` has the same
observable cost on every substrate.
"""

from __future__ import annotations

import base64
import json
import os
import struct
from typing import Any, Optional

from ..security.crypto import CryptoError, decrypt, encrypt

__all__ = [
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "SECRET",
    "encode_frame",
    "read_frame",
    "version_mismatch_error",
    "encode_payload",
    "decode_payload",
    "make_challenge",
    "prove_challenge",
    "verify_proof",
]

#: wire protocol generation.  Version 2 adds the handshake version
#: field itself plus the hierarchy frames (``contract``/``violation``/
#: ``report``/``poll``).  Version 3 adds coordinator failover: a worker
#: that already attached once reconnects with a ``reattach`` frame
#: (``{"type": "reattach", "worker_id", "proto", "completed"}``) instead
#: of ``hello``, the promoted standby answers ``takeover`` instead of
#: ``welcome``, and both replies carry an ``epoch`` field — the
#: coordinator incarnation counter workers use to refuse task frames
#: from a stale predecessor (``refused`` with reason ``"stale epoch"``).
#: Both handshake sides advertise the version; peers that disagree are
#: refused up front with an ``error`` frame instead of failing opaquely
#: on the first unknown frame type.
PROTOCOL_VERSION = 3

#: shared toy-cipher key (same key the other substrates use)
SECRET = b"repro-channel-key"

#: refuse frames above this size — a corrupt length prefix must not
#: make either side try to allocate gigabytes
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(message: dict) -> bytes:
    """Serialise one message to a length-prefixed JSON frame."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(body)) + body


async def read_frame(reader) -> Optional[dict]:
    """Read one frame from an ``asyncio.StreamReader``.

    Returns ``None`` on a clean or dirty EOF — the caller treats both as
    "the peer is gone"; distinguishing them is the supervisor's job (a
    dead connection with outstanding tasks means replay either way).
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            return None
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return message if isinstance(message, dict) else None


def version_mismatch_error(peer_proto: Any, *, role: str) -> dict:
    """The ``error`` frame refusing a peer speaking the wrong protocol."""
    spoke = "no protocol version" if peer_proto is None else f"protocol version {peer_proto}"
    return {
        "type": "error",
        "error": (
            f"protocol version mismatch: this {role} speaks version "
            f"{PROTOCOL_VERSION}, but the peer announced {spoke}; "
            "upgrade both sides to the same repro release"
        ),
        "proto": PROTOCOL_VERSION,
    }


def encode_payload(payload: Any, *, secured: bool) -> Any:
    """Prepare a task payload for the wire (encrypt + base64 if secured)."""
    if not secured:
        return payload
    clear = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return base64.b64encode(encrypt(SECRET, clear)).decode("ascii")


def decode_payload(payload: Any, *, secured: bool) -> Any:
    """Inverse of :func:`encode_payload` (runs worker-side)."""
    if not secured:
        return payload
    clear = decrypt(SECRET, base64.b64decode(payload.encode("ascii")))
    return json.loads(clear.decode("utf-8"))


# ----------------------------------------------------------------------
# secure-channel handshake (challenge/response under the shared key)
# ----------------------------------------------------------------------
#
# The coordinator sends a fresh random ``challenge`` in a ``secure``
# frame; the worker answers with ``prove_challenge(challenge)`` in a
# ``secured`` frame; the coordinator checks it with ``verify_proof``.
# Only a peer holding :data:`SECRET` can produce a valid proof, so a
# completed handshake demonstrates both ends share the key *before* any
# encrypted task payload travels — the mechanism the two-phase intent
# protocol's commit step waits on (see docs/MULTICONCERN.md).


def make_challenge() -> str:
    """A fresh random challenge (base64 text, safe inside JSON)."""
    return base64.b64encode(os.urandom(16)).decode("ascii")


def prove_challenge(challenge: str) -> str:
    """Worker-side: prove key possession by encrypting the challenge."""
    return base64.b64encode(encrypt(SECRET, challenge.encode("ascii"))).decode("ascii")


def verify_proof(challenge: str, proof: str) -> bool:
    """Coordinator-side: does ``proof`` decrypt back to ``challenge``?"""
    try:
        clear = decrypt(SECRET, base64.b64decode(proof.encode("ascii")))
    except (CryptoError, ValueError, UnicodeEncodeError):
        return False
    return clear == challenge.encode("ascii")
