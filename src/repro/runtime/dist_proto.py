"""The DistFarm wire protocol: length-prefixed JSON frames over TCP.

One frame is a 4-byte big-endian unsigned length followed by a UTF-8
JSON object.  JSON (not pickle) is deliberate: the coordinator accepts
connections from worker processes it did not spawn — possibly on other
hosts, possibly not even CPython — and a self-describing, inspectable
wire format keeps that boundary safe and debuggable (`tcpdump` shows
the actual protocol).  The cost is that task payloads and results must
be JSON-serialisable; the farm surfaces a clear error when they are not.

Frame vocabulary (``type`` field):

worker → coordinator
    ``hello``    first frame; carries the worker id (−1 = "assign me one")
    ``hb``       heartbeat, with the cumulative completed-task counter
    ``result``   one task outcome: ``value`` on success, ``error`` text
                 on failure (the coordinator rehydrates it as an
                 exception object in the results stream); optionally
                 ``span``, the worker-side execution span record
                 (trace/span/parent ids, name, actor, epoch start/end,
                 attributes) the coordinator re-parents into its trace
                 store
    ``secured``  answer to a ``secure`` challenge; carries ``proof``,
                 the base64 of the challenge encrypted under the shared
                 key — only a holder of the key can produce it
    ``refused``  a task bounced by a worker running ``--require-secure``
                 before the handshake completed; carries ``task_id`` and
                 ``reason`` (the coordinator replays it elsewhere)
    ``bye``      graceful exit after a poison frame

coordinator → worker
    ``welcome``  hello ack; carries the (possibly assigned) worker id
    ``task``     one task: ``task_id``, ``payload``, ``enc`` (when the
                 channel is secured the payload is the base64 of the
                 encrypted JSON bytes); optionally ``traceparent``, the
                 W3C-style trace context of the coordinator's dispatch
                 span (``00-<32hex trace>-<16hex span>-01``) under which
                 the worker records its execution span
    ``secure``   secure-channel handshake: carries a fresh ``challenge``
                 the worker must prove it can encrypt
    ``poison``   finish already-received tasks, send ``bye``, exit

Secured payloads use the same toy cipher as the thread and process
farms (:mod:`repro.security.crypto`), so ``secure_all()`` has the same
observable cost on every substrate.
"""

from __future__ import annotations

import base64
import json
import os
import struct
from typing import Any, Optional

from ..security.crypto import CryptoError, decrypt, encrypt

__all__ = [
    "MAX_FRAME",
    "SECRET",
    "encode_frame",
    "read_frame",
    "encode_payload",
    "decode_payload",
    "make_challenge",
    "prove_challenge",
    "verify_proof",
]

#: shared toy-cipher key (same key the other substrates use)
SECRET = b"repro-channel-key"

#: refuse frames above this size — a corrupt length prefix must not
#: make either side try to allocate gigabytes
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(message: dict) -> bytes:
    """Serialise one message to a length-prefixed JSON frame."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(body)) + body


async def read_frame(reader) -> Optional[dict]:
    """Read one frame from an ``asyncio.StreamReader``.

    Returns ``None`` on a clean or dirty EOF — the caller treats both as
    "the peer is gone"; distinguishing them is the supervisor's job (a
    dead connection with outstanding tasks means replay either way).
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            return None
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return message if isinstance(message, dict) else None


def encode_payload(payload: Any, *, secured: bool) -> Any:
    """Prepare a task payload for the wire (encrypt + base64 if secured)."""
    if not secured:
        return payload
    clear = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return base64.b64encode(encrypt(SECRET, clear)).decode("ascii")


def decode_payload(payload: Any, *, secured: bool) -> Any:
    """Inverse of :func:`encode_payload` (runs worker-side)."""
    if not secured:
        return payload
    clear = decrypt(SECRET, base64.b64decode(payload.encode("ascii")))
    return json.loads(clear.decode("utf-8"))


# ----------------------------------------------------------------------
# secure-channel handshake (challenge/response under the shared key)
# ----------------------------------------------------------------------
#
# The coordinator sends a fresh random ``challenge`` in a ``secure``
# frame; the worker answers with ``prove_challenge(challenge)`` in a
# ``secured`` frame; the coordinator checks it with ``verify_proof``.
# Only a peer holding :data:`SECRET` can produce a valid proof, so a
# completed handshake demonstrates both ends share the key *before* any
# encrypted task payload travels — the mechanism the two-phase intent
# protocol's commit step waits on (see docs/MULTICONCERN.md).


def make_challenge() -> str:
    """A fresh random challenge (base64 text, safe inside JSON)."""
    return base64.b64encode(os.urandom(16)).decode("ascii")


def prove_challenge(challenge: str) -> str:
    """Worker-side: prove key possession by encrypting the challenge."""
    return base64.b64encode(encrypt(SECRET, challenge.encode("ascii"))).decode("ascii")


def verify_proof(challenge: str, proof: str) -> bool:
    """Coordinator-side: does ``proof`` decrypt back to ``challenge``?"""
    try:
        clear = decrypt(SECRET, base64.b64decode(proof.encode("ascii")))
    except (CryptoError, ValueError, UnicodeEncodeError):
        return False
    return clear == challenge.encode("ascii")
