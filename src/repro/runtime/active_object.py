"""Active objects: the ProActive-style concurrency primitive.

"the ProActive Active Objects used to implement managers and workers use
asynchronous communication primitives" (§4.2, footnote 10).  An active
object owns one thread and one mailbox; method invocations are messages
that return :class:`FutureResult`s immediately and are served one at a
time in FIFO order — so an active object's internal state needs no
locking.

This is the live (wall-clock, real ``threading``) counterpart of the
simulated processes in :mod:`repro.sim.engine`; the thread-based farm
and pipeline runtimes build on it.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Optional

__all__ = ["FutureResult", "ActiveObject", "ActiveObjectError"]


class ActiveObjectError(RuntimeError):
    """Raised for invalid active-object usage."""


class FutureResult:
    """A promise for the result of an asynchronous invocation."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def ready(self) -> bool:
        """True once the invocation has completed (or failed)."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the result is available; re-raises failures.

        This is ProActive's *wait-by-necessity*, made explicit.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("future not resolved within timeout")
        if self._error is not None:
            raise self._error
        return self._value


class _Stop:
    """Mailbox sentinel ending the service thread."""


class ActiveObject:
    """A single-threaded service object with an asynchronous interface.

    Subclasses define ordinary methods; callers use :meth:`invoke` (or
    :meth:`oneway` for fire-and-forget) to run them on the object's own
    thread.  Direct attribute access from other threads is unsafe by
    design — all interaction goes through the mailbox.
    """

    def __init__(self, name: str = "active-object") -> None:
        self.name = name
        self._mailbox: "queue.Queue[Any]" = queue.Queue()
        self._thread = threading.Thread(target=self._serve, name=name, daemon=True)
        self._started = False
        self._stopped = False
        self.served = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ActiveObject":
        if self._started:
            return self
        self._started = True
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop the service thread.

        With ``drain=True`` pending requests are served first; otherwise
        the stop request jumps the queue as much as the mailbox allows.
        """
        if not self._started or self._stopped:
            self._stopped = True
            return
        self._stopped = True
        self._mailbox.put(_Stop())
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ActiveObjectError(f"{self.name}: service thread did not stop")

    @property
    def alive(self) -> bool:
        return self._started and self._thread.is_alive()

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------
    def invoke(self, method: str, *args: Any, **kwargs: Any) -> FutureResult:
        """Queue a method call; returns its future immediately."""
        if self._stopped:
            raise ActiveObjectError(f"{self.name} is stopped")
        if not self._started:
            raise ActiveObjectError(f"{self.name} not started")
        fn = getattr(self, method, None)
        if fn is None or not callable(fn):
            raise ActiveObjectError(f"{self.name} has no method {method!r}")
        future = FutureResult()
        self._mailbox.put((fn, args, kwargs, future))
        return future

    def oneway(self, method: str, *args: Any, **kwargs: Any) -> None:
        """Fire-and-forget invocation (result discarded)."""
        self.invoke(method, *args, **kwargs)

    def call(self, method: str, *args: Any, timeout: float = 30.0, **kwargs: Any) -> Any:
        """Synchronous convenience: invoke then wait."""
        return self.invoke(method, *args, **kwargs).wait(timeout)

    # ------------------------------------------------------------------
    # service loop
    # ------------------------------------------------------------------
    def _serve(self) -> None:
        while True:
            item = self._mailbox.get()
            if isinstance(item, _Stop):
                return
            fn, args, kwargs, future = item
            try:
                future._resolve(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - forwarded to caller
                future._reject(exc)
            finally:
                self.served += 1
