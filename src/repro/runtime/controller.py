"""Live autonomic control of a farm backend: same rules, real clock.

The policies are exactly the Figure 5 rule set built by
:func:`repro.core.policies.farm_rules` — the same objects that drive the
simulated farm manager — evaluated here by a wall-clock control loop
thread against the live farm's monitor snapshot.  This demonstrates the
paper's separation of mechanism and policy: the rules do not know (or
care) whether the beans underneath them come from a discrete-event
simulation, from ``threading`` queues, or from OS processes — the
controller sees only the :class:`~repro.runtime.backend.FarmBackend`
protocol, so :class:`~repro.runtime.farm_runtime.ThreadFarm`,
:class:`~repro.runtime.process_farm.ProcessFarm` and
:class:`~repro.runtime.dist_farm.DistFarm` are interchangeable
underneath it.
"""

from __future__ import annotations

import threading
import time
from typing import Any, List, Mapping, Optional, Tuple

from ..core.contracts import (
    BestEffortContract,
    CompositeContract,
    Contract,
    MaxLatencyContract,
    MinThroughputContract,
    ThroughputRangeContract,
)
from ..core.events import ViolationKind
from ..core.policies import ManagersConstants, farm_rules, latency_rule
from ..rules.beans import (
    ArrivalRateBean,
    DepartureRateBean,
    LatencyBean,
    ManagerOperation,
    NumWorkerBean,
    QueueVarianceBean,
)
from ..obs.telemetry import NOOP, Telemetry
from ..rules.engine import RuleEngine
from .backend import FarmBackend

__all__ = ["FarmController", "ThreadFarmController"]


class FarmController:
    """A wall-clock MAPE loop enforcing a contract on a :class:`FarmBackend`.

    The backend may be a :class:`~repro.runtime.farm_runtime.ThreadFarm`,
    a :class:`~repro.runtime.process_farm.ProcessFarm` or a
    :class:`~repro.runtime.dist_farm.DistFarm`; the controller never
    looks past the protocol, so the rule set stays substrate-agnostic.

    ``telemetry`` (optional, no-op default) records the same
    ``mape.*`` span hierarchy the simulated managers emit — but on the
    wall clock, since this controller is a real thread: one probe works
    for every substrate.

    When a :class:`~repro.runtime.multiconcern.LiveGeneralManager` has
    registered this controller (setting :attr:`coordinator`), grow
    actuations become *intents*: they route through the GM's two-phase
    protocol, where other concern managers may amend or veto them,
    instead of calling ``farm.add_worker()`` directly.
    """

    #: quantitative concern — reviews after boolean concerns in the GM
    concern = "performance"

    def __init__(
        self,
        farm: FarmBackend,
        contract: Contract,
        *,
        control_period: float = 0.5,
        constants: Optional[ManagersConstants] = None,
        max_workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        name: str = "AM_live",
    ) -> None:
        if control_period <= 0:
            raise ValueError("control_period must be positive")
        self.farm = farm
        self.name = name
        self.control_period = control_period
        self.constants = constants or ManagersConstants()
        if max_workers is not None:
            self.constants.FARM_MAX_NUM_WORKERS = max_workers
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.engine = RuleEngine(
            farm_rules(self.constants), telemetry=self.telemetry, owner=name
        )
        self.engine.add_rule(latency_rule(self.constants))
        self.violations: List[Tuple[float, str]] = []
        self.actions: List[Tuple[float, str]] = []
        #: set by LiveGeneralManager.register(); routes grow intents
        self.coordinator: Optional[Any] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: serialises contract swaps against in-flight MAPE cycles, so a
        #: cycle always analyses/plans/executes against ONE contract's
        #: thresholds — never a half-old, half-new mixture
        self._cycle_lock = threading.RLock()
        self.assign_contract(contract)

    # ------------------------------------------------------------------
    # contract
    # ------------------------------------------------------------------
    def assign_contract(self, contract: Contract) -> None:
        """Swap the enforced contract, atomically w.r.t. the MAPE cycle.

        The new thresholds are validated *before* anything mutates and
        applied under the cycle lock, so a swap arriving mid-cycle takes
        effect on the next cycle rather than steering half of this one.
        An unsupported part therefore leaves the previous contract fully
        in force instead of half-applied.
        """
        parts = contract.parts if isinstance(contract, CompositeContract) else [contract]
        supported = (
            ThroughputRangeContract,
            MinThroughputContract,
            MaxLatencyContract,
            BestEffortContract,
        )
        for part in parts:
            if not isinstance(part, supported):
                raise ValueError(f"unsupported contract {type(part).__name__}")
        with self._cycle_lock:
            self.contract = contract
            for part in parts:
                if isinstance(part, ThroughputRangeContract):
                    self.constants.FARM_LOW_PERF_LEVEL = part.low
                    self.constants.FARM_HIGH_PERF_LEVEL = part.high
                elif isinstance(part, MinThroughputContract):
                    self.constants.FARM_LOW_PERF_LEVEL = part.target
                    self.constants.FARM_HIGH_PERF_LEVEL = float("inf")
                elif isinstance(part, MaxLatencyContract):
                    self.constants.FARM_MAX_LATENCY = part.limit
                elif isinstance(part, BestEffortContract):
                    self.constants.FARM_LOW_PERF_LEVEL = 0.0
                    self.constants.FARM_HIGH_PERF_LEVEL = float("inf")

    # ------------------------------------------------------------------
    # loop lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FarmController":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="farm-controller", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)

    def _loop(self) -> None:
        while not self._stop.wait(self.control_period):
            self.control_step()

    # ------------------------------------------------------------------
    # one MAPE tick (public so tests can drive it deterministically)
    # ------------------------------------------------------------------
    def control_step(self) -> List[str]:
        tel = self.telemetry
        with self._cycle_lock, tel.span("mape.cycle", actor=self.name) as cycle:
            with tel.span("mape.monitor", actor=self.name):
                snap = self.farm.snapshot()
            with tel.span("mape.analyse", actor=self.name):
                mem = self.engine.memory
                mem.replace(ArrivalRateBean(snap.arrival_rate).bind_sink(self._sink))
                mem.replace(DepartureRateBean(snap.departure_rate).bind_sink(self._sink))
                mem.replace(NumWorkerBean(snap.num_workers).bind_sink(self._sink))
                mem.replace(QueueVarianceBean(snap.queue_variance).bind_sink(self._sink))
                mem.replace(LatencyBean(snap.mean_latency).bind_sink(self._sink))
                if tel.enabled:
                    m = tel.metrics
                    m.gauge(
                        "repro_farm_departure_rate", "results per second leaving the farm"
                    ).labels(manager=self.name).set(snap.departure_rate)
                    m.gauge(
                        "repro_farm_workers", "active workers"
                    ).labels(manager=self.name).set(snap.num_workers)
                    m.gauge(
                        "repro_farm_queue_variance", "variance of per-worker queue lengths"
                    ).labels(manager=self.name).set(snap.queue_variance)
                    m.gauge(
                        "repro_farm_latency_seconds", "windowed mean task latency"
                    ).labels(manager=self.name).set(snap.mean_latency)
            with tel.span("mape.plan", actor=self.name) as plan:
                agenda = self.engine.agenda()
                if tel.enabled:
                    plan.set_attribute(
                        "matched", [(a.rule.name, a.rule.salience) for a in agenda]
                    )
            with tel.span("mape.execute", actor=self.name) as execute:
                fired = self.engine.fire(agenda)
                if tel.enabled:
                    execute.set_attribute("fired", fired)
        if tel.enabled:
            tel.metrics.histogram(
                "repro_control_loop_latency_seconds",
                "wall-clock cost of one MAPE control tick",
            ).labels(manager=self.name).observe(cycle.perf_elapsed or 0.0)
            tel.metrics.counter(
                "repro_mape_ticks_total", "MAPE control ticks executed"
            ).labels(manager=self.name).inc()
        return fired

    def _sink(self, op: ManagerOperation, data: Any) -> None:
        now = self.farm.now()
        # adaptation-latency yardstick (ROADMAP item 4): the tracker, when
        # attached by an SLOEngine, stamps violation-observed and
        # plan-committed timestamps off these exact hook points
        adaptation = getattr(self.telemetry, "adaptation", None)
        if op is ManagerOperation.RAISE_VIOLATION:
            self.violations.append((now, str(data)))
            if adaptation is not None:
                adaptation.violation_observed(str(data), manager=self.name)
            return
        if op is ManagerOperation.ADD_EXECUTOR:
            count = int(data.get("count", 1)) if isinstance(data, Mapping) else 1
            if self.coordinator is not None:
                # multi-concern mode: express the *intent* and let the GM
                # run plan → review → commit (other concerns may amend or
                # veto before any worker is instantiated)
                if self.coordinator.execute_intent(self, op, data):
                    self.actions.append((now, f"addWorker x{count} (intent)"))
                    if adaptation is not None:
                        adaptation.plan_committed("addWorker", manager=self.name)
                else:
                    self.violations.append((now, ViolationKind.NO_LOCAL_PLAN))
                return
            added = 0
            for _ in range(count):
                try:
                    self.farm.add_worker()
                    added += 1
                except RuntimeError:
                    break
            if added:
                self.actions.append((now, f"addWorker x{added}"))
                if adaptation is not None:
                    adaptation.plan_committed("addWorker", manager=self.name)
            else:
                self.violations.append((now, ViolationKind.NO_LOCAL_PLAN))
            return
        if op is ManagerOperation.REMOVE_EXECUTOR:
            if self.farm.remove_worker() is not None:
                self.actions.append((now, "removeWorker"))
                if adaptation is not None:
                    adaptation.plan_committed("removeWorker", manager=self.name)
            return
        if op is ManagerOperation.BALANCE_LOAD:
            moved = self.farm.balance_load()
            if moved:
                self.actions.append((now, f"rebalance x{moved}"))
            return
        raise ValueError(f"controller cannot execute {op}")


#: Historical name from when the thread farm was the only live backend;
#: kept as an alias so existing imports keep working.
ThreadFarmController = FarmController
