"""Distributed task farm: an asyncio TCP coordinator driving worker processes.

The fourth substrate behind the unmodified Figure 5 rules — after the
simulator, the thread farm and the process farm — and the first with a
real *network* boundary between manager and managed, which is the
platform shape the paper's behavioural skeletons actually target
(GCM/ProActive components steered across a grid).  The coordinator
speaks the binary batched protocol of :mod:`.dist_proto` over TCP —
v4: struct-packed frame headers, a payload codec negotiated per worker
at ``hello``, multi-task ``task_batch``/``result_batch`` frames, with
v3 JSON peers still served via handshake downgrade — to worker
processes it spawns locally through
``python -m repro.runtime.dist_worker`` — and since that entry point is
just a CLI, extra workers can be attached by hand from any host that
can reach ``host:port``.

Fault tolerance mirrors :class:`~repro.runtime.process_farm.ProcessFarm`
semantics exactly, because the conformance suite holds every backend to
the same bar:

* every dispatched task is tracked until its result frame returns;
* workers are declared dead on connection EOF, on heartbeat silence
  beyond ``heartbeat_timeout``, or when their local process exits;
* a dead worker's un-acked tasks are *replayed* with capped exponential
  backoff (at-least-once), deduplicated by task id on the way out
  (exactly-once results), and parked in ``dead_letters`` after
  ``max_attempts`` dispatches;
* lost *capacity* is restored by the ordinary ``CheckRateLow`` rule
  through :class:`~repro.runtime.controller.FarmController` — recovery
  is contract enforcement, exactly as §2 frames it.

Dispatch is *windowed*: each worker holds at most ``max_inflight``
un-acked tasks; everything else waits in a coordinator-side ready queue
and flows to whichever worker frees a slot first.  That keeps the
replay set per crash small, makes queue lengths self-balancing (so
``balance_load`` has genuinely nothing to move), and gives backpressure
a single obvious place to live.

Threading model: one asyncio loop in a daemon thread owns every socket;
the synchronous :class:`~repro.runtime.backend.FarmBackend` surface is
called from other threads and communicates with the loop only through
``call_soon_threadsafe``.  Shared bookkeeping sits behind one re-entrant
lock, held only for short, non-blocking sections.
"""

from __future__ import annotations

import asyncio
import heapq
import os
import subprocess
import sys
import threading
import time
import queue
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..obs.propagation import TraceContext, task_context
from ..obs.spans import Span
from ..obs.telemetry import NOOP, Telemetry
from ..sim.metrics import WindowRateEstimator, queue_length_stats
from .backend import RuntimeFarmSnapshot
from .dist_proto import (
    COMPAT_PROTOCOLS,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    encode_frame_v4,
    encode_payload,
    make_challenge,
    negotiate_codec,
    version_mismatch_error,
    read_frame_ex,
    verify_proof,
)
from .process_farm import DeadLetter

__all__ = ["DistFarm", "DistWorkerHandle", "fn_spec"]


def fn_spec(fn: Any) -> str:
    """Derive the ``module:qualname`` spec a worker process can import.

    The task function crosses a process (and potentially host) boundary
    by *name*, never by value — the same constraint multiprocessing's
    ``spawn`` start method imposes, made explicit.
    """
    if isinstance(fn, str):
        if ":" not in fn:
            raise ValueError(f"fn spec must look like 'module:qualname', got {fn!r}")
        return fn
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        raise ValueError(f"cannot derive an import spec for {fn!r}")
    if module == "__main__" or "<locals>" in qualname:
        raise ValueError(
            f"DistFarm task functions must be importable module-level callables "
            f"(got {module}:{qualname}); move the function into a module"
        )
    return f"{module}:{qualname}"


class _ResultBus(queue.Queue):
    """A ``queue.Queue`` that can deliver a whole result batch at once.

    ``put`` wakes the consumer (and trades the GIL) once *per item*; on
    the batched wire a single ``result_batch`` frame carries dozens of
    results, and that per-item handoff storm between the loop thread
    and the draining caller was a measurable share of the transport
    cost.  ``put_many`` appends the batch under one lock acquisition
    and one wakeup.  Items are still individual results — only the
    producer-side granularity changes.
    """

    def put_many(self, items: List[Any]) -> None:
        if not items:
            return
        with self.mutex:
            self.queue.extend(items)
            self.unfinished_tasks += len(items)
            self.not_empty.notify(len(items))


@dataclass
class _TaskRecord:
    """Coordinator-side bookkeeping for one not-yet-acknowledged task."""

    task_id: int
    payload: Any
    submitted_at: float
    attempts: int = 0
    worker_id: Optional[int] = None  # None: awaiting (re)dispatch
    next_retry_at: float = 0.0
    # trace context: the task's root span and the current (or most
    # recent) dispatch-attempt span; each new attempt parents under the
    # previous one, so a replayed task reads as one causal chain
    root: Optional[Span] = None
    dispatch: Optional[Span] = None
    dispatch_seq: int = 0


@dataclass
class DistWorkerHandle:
    """Coordinator-side view of one worker (spawned or attached)."""

    worker_id: int
    #: local child process, or None for a remotely attached worker
    process: Optional[subprocess.Popen] = None
    writer: Optional[asyncio.StreamWriter] = None
    connected: bool = False
    ever_connected: bool = False
    secured: bool = False
    quarantined: bool = False
    active: bool = True
    retiring: bool = False
    got_bye: bool = False
    spawned_at: float = 0.0
    last_seen: float = 0.0
    #: protocol generation this session negotiated (3: legacy JSON
    #: dialect — one task per frame, per-payload encryption; 4: binary
    #: frames, batches)
    proto: int = PROTOCOL_VERSION
    #: frame layout the peer speaks (set from its hello; replies in kind)
    wire: int = 3
    #: payload codec negotiated at hello for this session's data frames
    codec: str = "json"
    reported_completed: int = 0
    dispatched: int = 0
    outstanding: Set[int] = field(default_factory=set)
    span: Any = None  # detached dist.worker telemetry span
    #: in-flight secure handshake state (challenge sent, waiter to wake)
    secure_challenge: Optional[str] = None
    secure_waiter: Optional[threading.Event] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None


class DistFarm:
    """A live task farm whose executors sit across a TCP boundary.

    Satisfies the :class:`~repro.runtime.backend.FarmBackend` surface,
    so :class:`~repro.runtime.controller.FarmController` drives it with
    the unmodified Figure 5 rules.  Extra knobs:

    ``host``
        interface the coordinator binds (default loopback; use
        ``"0.0.0.0"`` to accept workers from other hosts).
    ``heartbeat_period`` / ``heartbeat_timeout``
        workers beat every period; a *connected* worker silent for the
        timeout is declared dead (wedged or partitioned).
    ``connect_grace``
        a spawned worker that never manages to connect within this
        budget is declared dead (interpreter start + imports happen in
        here, so it is deliberately generous).
    ``backoff_base`` / ``backoff_cap`` / ``max_attempts``
        replay schedule, identical to the process farm's.
    ``max_inflight``
        un-acked tasks a worker may hold; the rest queue centrally.
    ``start_timeout``
        how long ``__init__`` waits for the initial workers to connect.
    ``port``
        TCP port to bind (default 0: pick a free one).  A promoted
        standby passes the dead coordinator's port so surviving workers
        redialing it land on the successor.
    ``epoch``
        coordinator incarnation counter, announced in every
        ``welcome``/``takeover`` frame; workers refuse task frames from
        an epoch older than the newest they have served.
    ``worker_reconnect_attempts``
        spawn workers with ``--reconnect-attempts N`` so they survive a
        coordinator crash and reattach to the promoted standby (0, the
        default: workers exit on coordinator EOF, the pre-v3 behaviour).
    ``codec``
        payload codec for v4 sessions: ``"auto"`` (default) negotiates
        per worker — pickle for workers this coordinator spawned or
        adopted, the safe list for remote attachers — or a codec name
        to pin every session to it.  v3 peers always speak json.
    ``batch_size``
        most tasks one ``task_batch`` frame carries; with the default
        ``max_inflight`` of 2 batches degenerate to singletons, so
        throughput configs raise both together.
    ``max_buffered_bytes``
        backpressure threshold: a worker whose socket write buffer
        exceeds this is skipped by dispatch until it drains (the
        supervisor tick and every ack re-run the fill pass).
    """

    #: ``add_worker`` accepts ``require_secure=True``, spawning workers
    #: that enforce the admission gate on their own side of the wire
    #: (coordinators without the capability simply rely on quarantine)
    SUPPORTS_REQUIRE_SECURE = True

    def __init__(
        self,
        fn: Any,
        *,
        initial_workers: int = 2,
        name: str = "dfarm",
        rate_window: float = 5.0,
        max_workers: int = 64,
        host: str = "127.0.0.1",
        heartbeat_period: float = 0.1,
        heartbeat_timeout: float = 2.0,
        connect_grace: float = 15.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        max_attempts: int = 5,
        supervise_period: float = 0.05,
        max_inflight: int = 2,
        start_timeout: float = 30.0,
        telemetry: Optional[Telemetry] = None,
        clock: Callable[[], float] = time.monotonic,
        port: int = 0,
        epoch: int = 0,
        worker_reconnect_attempts: int = 0,
        codec: str = "auto",
        batch_size: int = 32,
        max_buffered_bytes: int = 256 * 1024,
    ) -> None:
        if initial_workers < 0:
            # 0 is legal: a promoted standby starts empty and adopts the
            # dead coordinator's surviving workers instead of spawning
            raise ValueError("initial_workers must be non-negative")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.fn_spec = fn_spec(fn)
        if codec == "auto":
            # REPRO_DIST_CODEC pins every session without touching call
            # sites — how the CI msgpack conformance leg forces the
            # optional codec onto the whole grow/crash story
            codec = os.environ.get("REPRO_DIST_CODEC") or "auto"
        self.codec = codec
        self.batch_size = batch_size
        self.max_buffered_bytes = max_buffered_bytes
        self._fill_scheduled = False
        self.name = name
        self.max_workers = max_workers
        self.heartbeat_period = heartbeat_period
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_grace = connect_grace
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_attempts = max_attempts
        self.supervise_period = supervise_period
        self.max_inflight = max_inflight
        self.telemetry = telemetry if telemetry is not None else NOOP
        self._host = host
        self.epoch = epoch
        self.worker_reconnect_attempts = worker_reconnect_attempts
        self._requested_port = port
        self._clock = clock
        self._t0 = clock()

        self.results: "_ResultBus" = _ResultBus()
        self._lock = threading.RLock()
        self.workers: List[DistWorkerHandle] = []
        self._next_id = 0

        self.arrival_est = WindowRateEstimator(rate_window, start_time=0.0)
        self.departure_est = WindowRateEstimator(rate_window, start_time=0.0)
        self.rate_window = rate_window
        self._latencies: "deque" = deque()  # (completion_time, latency)

        self._tasks: Dict[int, _TaskRecord] = {}
        self._ready: "deque[int]" = deque()
        self._ready_set: Set[int] = set()
        self._retry_heap: List[Tuple[float, int]] = []  # (due, task_id)
        self._completed_ids: Set[int] = set()
        self._task_seq = 0
        self.submitted = 0
        self.completed = 0
        self.dead_letters: List[DeadLetter] = []
        self.crashes: List[Tuple[float, int]] = []  # (time, worker_id)
        self.replays = 0
        self.duplicates = 0

        self._shutdown = threading.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._supervisor_task: Optional[asyncio.Task] = None
        self.port: int = 0

        self._loop = asyncio.new_event_loop()
        self._loop_ready = threading.Event()
        self._loop_thread = threading.Thread(
            target=self._loop_main, name=f"{name}-loop", daemon=True
        )
        self._loop_thread.start()
        if not self._loop_ready.wait(start_timeout):
            raise RuntimeError("coordinator event loop failed to start")

        try:
            for _ in range(initial_workers):
                self.add_worker()
            self._wait_for_connections(initial_workers, start_timeout)
        except Exception:
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    # event-loop thread
    # ------------------------------------------------------------------
    def _loop_main(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            self._server = await asyncio.start_server(
                self._on_connection, self._host, self._requested_port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            self._supervisor_task = self._loop.create_task(self._supervise_coro())

        self._loop.run_until_complete(boot())
        self._loop_ready.set()
        self._loop.run_forever()
        try:
            self._loop.run_until_complete(self._finalize())
        finally:
            self._loop.close()

    async def _finalize(self) -> None:
        """Post-``loop.stop()`` cleanup: no socket survives shutdown."""
        if self._server is not None:
            self._server.close()
        with self._lock:
            writers = [w.writer for w in self.workers if w.writer is not None]
        for writer in writers:
            try:
                writer.transport.abort()
            except Exception:  # noqa: BLE001
                pass
        pending = [
            t for t in asyncio.all_tasks(self._loop) if t is not asyncio.current_task()
        ]
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)

    async def _on_connection(self, reader, writer) -> None:
        """One connected worker: handshake, then pump its frames."""
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # teardown (crash/shutdown) cancelled this handler mid-read;
            # swallowing the cancellation keeps 3.11's streams done-
            # callback from logging it as an unhandled task exception
            return

    async def _serve_connection(self, reader, writer) -> None:
        # the hello travels as codec 0 (json) on either frame layout; a
        # protocol violation before identification is just a bad client
        try:
            hello, wire = await read_frame_ex(reader, allowed=("json",))
        except ProtocolError:
            writer.close()
            return
        if hello is None or hello.get("type") not in ("hello", "reattach"):
            writer.close()
            return
        peer_proto = hello.get("proto")
        if peer_proto not in COMPAT_PROTOCOLS:
            # refuse mismatched (or unversioned) peers up front with a
            # diagnosis, instead of failing opaquely on the first frame
            # the older peer does not understand
            writer.write(
                self._encode_wire(
                    version_mismatch_error(peer_proto, role="coordinator"), wire
                )
            )
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        claimed = int(hello.get("worker_id", -1))
        # the session runs the v4 dialect only if the peer both announced
        # v4 *and* framed its hello as v4 — a v4-version hello on v3
        # frames (hand-rolled clients, tests) gets the legacy dialect
        session_proto = 4 if (peer_proto == PROTOCOL_VERSION and wire == 4) else 3
        codec = "json"
        if session_proto == 4:
            with self._lock:
                existing = self._find_worker(claimed) if claimed >= 0 else None
                # pickle is only negotiated with workers whose *process*
                # this coordinator owns (spawned or adopted); a remote
                # attacher negotiates down the safe list
                trusted = existing is not None and existing.process is not None
            try:
                codec = negotiate_codec(
                    hello.get("codecs") or ["json"],
                    trusted=trusted,
                    allowed=self.codec,
                )
            except ProtocolError as exc:
                writer.write(
                    encode_frame_v4(
                        {"type": "error", "error": str(exc), "proto": PROTOCOL_VERSION}
                    )
                )
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                writer.close()
                return
        with self._lock:
            handle = self._find_worker(claimed) if claimed >= 0 else None
            reattaching = (
                hello.get("type") == "reattach"
                and handle is not None
                and handle.active
                and not handle.connected
            )
            if reattaching:
                # a worker that outlived its previous coordinator:
                # reactivate its registration instead of allocating a
                # fresh identity.  Channel trust does not survive the
                # crash — the secure handshake must be redone — and any
                # outstanding attempts recorded against the old life are
                # replayed rather than waited for.
                handle.retiring = False
                handle.got_bye = False
                handle.secured = False
                handle.reported_completed = max(
                    handle.reported_completed, int(hello.get("completed", 0))
                )
                for task_id in sorted(handle.outstanding):
                    record = self._tasks.get(task_id)
                    if record is not None and task_id not in self._completed_ids:
                        record.worker_id = None
                        self.telemetry.end_span(
                            record.dispatch, outcome="redispatched"
                        )
                        self.replays += 1
                        self._enqueue_ready(task_id)
                handle.outstanding.clear()
            elif handle is None or handle.connected or not handle.active:
                # remotely attached (or stale-id) worker: register fresh
                if sum(1 for w in self.workers if w.active) >= self.max_workers:
                    writer.close()
                    return
                handle = self._register_worker(process=None)
            handle.writer = writer
            handle.connected = True
            handle.ever_connected = True
            handle.last_seen = self.now()
            handle.proto = session_proto
            handle.wire = wire if session_proto == 4 else 3
            handle.codec = codec
            retiring = handle.retiring
        reply = {
            "type": "takeover" if reattaching else "welcome",
            "worker_id": handle.worker_id,
            # echo the peer's own generation: a v3 peer must read the
            # version it can serve, not the one we prefer
            "proto": peer_proto,
            "epoch": self.epoch,
        }
        if session_proto == 4:
            reply["codec"] = codec
        writer.write(self._encode_control(handle, reply))
        if reattaching:
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "repro_dist_reattach_total",
                    "workers reattached after a coordinator failover",
                ).labels(farm=self.name).inc()
            # ready tasks may have been waiting for this worker to appear
            self._request_fill()
        if retiring or self._shutdown.is_set():
            # retired (or farm torn down) before it finished connecting
            writer.write(self._encode_control(handle, {"type": "poison"}))
        self._count_frame("tx", 0)
        # after negotiation the connection may only carry json (control
        # frames) and the session codec; anything else is a violation
        allowed = ("json", handle.codec)
        while True:
            try:
                frame = await read_frame_ex(reader, allowed=allowed)
            except ProtocolError as exc:
                # torn batch, oversized length, codec smuggling: the
                # peer is faulty — disconnect, declare dead, replay its
                # window elsewhere.  Never wait it out.
                self._count_protocol_error(exc)
                break
            if frame[0] is None:
                break
            self._count_frame("rx", len(frame[0]))
            self._handle_message(handle, frame[0])
        writer.close()
        self._on_disconnect(handle)

    def _encode_wire(self, message: dict, wire: int) -> bytes:
        """Encode one control frame for a given frame layout (pre-handshake)."""
        return encode_frame(message) if wire == 3 else encode_frame_v4(message)

    def _encode_control(self, handle: DistWorkerHandle, message: dict) -> bytes:
        """Encode one control frame on ``handle``'s dialect (json, clear)."""
        return self._encode_wire(message, handle.wire)

    def _count_protocol_error(self, exc: ProtocolError) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_dist_protocol_errors_total",
                "connections dropped for wire-protocol violations",
            ).labels(farm=self.name).inc()

    def _on_disconnect(self, handle: DistWorkerHandle) -> None:
        with self._lock:
            handle.connected = False
            handle.writer = None
            if not handle.active:
                return
            if handle.retiring and handle.got_bye and not handle.outstanding:
                handle.active = False  # clean retirement, nothing to replay
                self._end_worker_span(handle, outcome="retired")
            else:
                self._declare_dead(handle, self.now())
        self._request_fill()

    # ------------------------------------------------------------------
    # message handling (runs in the loop thread)
    # ------------------------------------------------------------------
    def _handle_message(self, handle: DistWorkerHandle, frame: dict) -> None:
        kind = frame.get("type")
        if kind == "secured":
            self._handle_secured(handle, frame)
            return
        if kind == "refused":
            self._handle_refused(handle, frame)
            return
        if kind in ("result", "result_batch"):
            # a result_batch acks a whole window in one frame; a lone
            # result frame is just a batch of one with the legacy shape
            entries = frame["results"] if kind == "result_batch" else (frame,)
            deliver: List[Any] = []
            with self._lock:
                now = self.now()
                handle.last_seen = now
                self._note_worker_counter(handle, int(frame.get("completed", 0)))
                for entry in entries:
                    fresh, result = self._absorb_result(handle, entry, now)
                    if fresh:
                        deliver.append(result)
            self.results.put_many(deliver)
            self._fill()  # freed slots may unblock the ready queue
            return
        with self._lock:
            handle.last_seen = self.now()
            if kind == "hb":
                self._note_worker_counter(handle, int(frame.get("completed", 0)))
            elif kind == "bye":
                handle.got_bye = True
                self._note_worker_counter(handle, int(frame.get("completed", 0)))

    def _absorb_result(
        self, handle: DistWorkerHandle, entry: dict, now: float
    ) -> Tuple[bool, Any]:
        """Account one result entry (lock held).

        Returns ``(fresh, result)``; ``fresh`` is False for a duplicate
        of an already-completed task — the at-least-once replay that
        also finished on its original worker — including duplicates
        *inside* one replayed batch: exactly-once outward either way.
        """
        task_id = int(entry["task_id"])
        handle.outstanding.discard(task_id)
        if self.telemetry.enabled:
            # import the worker-side exec span even for a duplicate
            # result: both executions of an at-least-once replay
            # belong in the task's one trace tree
            self.telemetry.import_span(entry.get("span"))
        if task_id in self._completed_ids:
            self.duplicates += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "repro_dist_duplicate_results_total",
                    "result frames dropped because the task already completed",
                ).labels(farm=self.name).inc()
            return False, None
        self._completed_ids.add(task_id)
        record = self._tasks.pop(task_id, None)
        if "error" in entry:
            result: Any = RuntimeError(entry["error"])
        else:
            result = entry.get("value")
        mark = max(now, self.departure_est._last_mark or 0.0)
        self.departure_est.mark(mark)
        self.completed += 1
        if record is not None:
            self._latencies.append((mark, mark - record.submitted_at))
            outcome = "error" if isinstance(result, Exception) else "ok"
            self.telemetry.end_span(record.dispatch, outcome=outcome)
            self.telemetry.end_span(record.root, outcome=outcome)
        return True, result

    def _handle_secured(self, handle: DistWorkerHandle, frame: dict) -> None:
        """A worker answered a ``secure`` challenge (loop thread)."""
        with self._lock:
            handle.last_seen = self.now()
            challenge = handle.secure_challenge
            ok = challenge is not None and verify_proof(
                challenge, str(frame.get("proof", ""))
            )
            if ok:
                handle.secured = True
            handle.secure_challenge = None
            waiter = handle.secure_waiter
            handle.secure_waiter = None
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_dist_secure_handshakes_total",
                "secure-channel handshake answers, by outcome",
            ).labels(farm=self.name, outcome="ok" if ok else "bad-proof").inc()
        if waiter is not None:
            waiter.set()

    def _handle_refused(self, handle: DistWorkerHandle, frame: dict) -> None:
        """A ``--require-secure`` worker bounced a task (loop thread).

        The bounce counts as a failed dispatch attempt: the task is
        replayed elsewhere, and a task that only ever meets refusals is
        dead-lettered rather than ping-ponged forever.
        """
        raw_ids = frame.get("task_ids")
        task_ids = (
            [int(t) for t in raw_ids]
            if raw_ids
            else [int(frame.get("task_id", -1))]
        )
        with self._lock:
            handle.last_seen = self.now()
            for task_id in task_ids:
                self._refuse_one(handle, task_id)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_dist_refused_frames_total",
                "task frames bounced by workers awaiting the handshake",
            ).labels(farm=self.name).inc()
        self._fill()

    def _refuse_one(self, handle: DistWorkerHandle, task_id: int) -> None:
        """Account one bounced dispatch (lock held): replay or dead-letter."""
        handle.outstanding.discard(task_id)
        record = self._tasks.get(task_id)
        if record is None or task_id in self._completed_ids:
            return
        record.worker_id = None
        # the bounced attempt stays referenced by the record so the
        # replay parents under it
        self.telemetry.end_span(record.dispatch, outcome="refused")
        if record.attempts >= self.max_attempts:
            del self._tasks[task_id]
            self.telemetry.end_span(record.root, outcome="dead-letter")
            self.dead_letters.append(
                DeadLetter(
                    task_id=task_id,
                    payload=record.payload,
                    attempts=record.attempts,
                    last_worker_id=handle.worker_id,
                )
            )
        else:
            self.replays += 1
            self._enqueue_ready(task_id)

    def _note_worker_counter(self, handle: DistWorkerHandle, completed: int) -> None:
        handle.reported_completed = max(handle.reported_completed, completed)
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge(
                "repro_dist_worker_completed_tasks",
                "cumulative tasks completed, as reported by each worker",
            ).labels(farm=self.name, worker=handle.worker_id).set(
                handle.reported_completed
            )

    def _count_frame(self, direction: str, size: int) -> None:
        if not self.telemetry.enabled:
            return
        self.telemetry.metrics.counter(
            "repro_dist_frames_total", "protocol frames exchanged"
        ).labels(farm=self.name, direction=direction).inc()

    # ------------------------------------------------------------------
    # time base
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._clock() - self._t0

    # ------------------------------------------------------------------
    # stream
    # ------------------------------------------------------------------
    def submit(
        self,
        payload: Any,
        *,
        tenant: Optional[str] = None,
        traceparent: Optional[str] = None,
    ) -> None:
        """Track one task and queue it for dispatch.

        With ``traceparent`` (a supervisor resubmitting across a
        coordinator crash) this farm's span is a ``task.attempt`` child
        of the caller's root instead of a fresh root, so every
        incarnation's attempt chains into one tree.
        """
        with self._lock:
            now = self.now()
            self.arrival_est.mark(now)
            self.submitted += 1
            task_id = self._task_seq
            self._task_seq += 1
            record = _TaskRecord(task_id=task_id, payload=payload, submitted_at=now)
            if self.telemetry.enabled:
                parent = (
                    TraceContext.from_traceparent(traceparent) if traceparent else None
                )
                if parent is not None:
                    record.root = self.telemetry.start_span(
                        "task.attempt",
                        actor=self.name,
                        context=parent.child(f"{self.name}/task/{task_id}"),
                        task_id=task_id,
                        **({"tenant": tenant} if tenant is not None else {}),
                    )
                else:
                    record.root = self.telemetry.start_span(
                        "task",
                        actor=self.name,
                        context=task_context(self.name, task_id),
                        task_id=task_id,
                        **({"tenant": tenant} if tenant is not None else {}),
                    )
            self._tasks[task_id] = record
            self._enqueue_ready(task_id)
        self._request_fill()

    def _enqueue_ready(self, task_id: int) -> None:
        """Append to the ready queue exactly once (lock held)."""
        if task_id not in self._ready_set:
            self._ready.append(task_id)
            self._ready_set.add(task_id)

    def _request_fill(self) -> None:
        """Schedule a dispatch pass on the loop thread (thread-safe).

        Coalesced: a burst of submits lands one ``_fill`` on the loop,
        not one per task — the single biggest win of the batched wire,
        since that one pass then drains the whole burst as batch frames.
        """
        if self._shutdown.is_set():
            return
        with self._lock:
            if self._fill_scheduled:
                return
            self._fill_scheduled = True
        try:
            self._loop.call_soon_threadsafe(self._fill)
        except RuntimeError:  # loop already closed
            with self._lock:
                self._fill_scheduled = False

    def _writable(self, w: DistWorkerHandle) -> bool:
        """Backpressure check: is this worker's socket buffer shallow enough?

        A worker that stops reading (wedged, partitioned, slow) piles
        bytes into its transport buffer; skipping it keeps the pipeline
        streaming to workers that are actually draining, and the next
        ack or supervisor tick retries the skipped one.
        """
        writer = w.writer
        if writer is None:
            return False
        try:
            return writer.transport.get_write_buffer_size() < self.max_buffered_bytes
        except Exception:  # noqa: BLE001 - transport mid-teardown
            return True

    def _fill(self) -> None:
        """Dispatch ready tasks into free worker windows (loop thread only).

        Each pass fills the least-loaded worker's free window slots with
        up to ``batch_size`` tasks in one ``task_batch`` frame (v4
        sessions; v3 sessions get one legacy frame per task) and moves
        on, so a burst of submits streams out as a handful of writes
        instead of a write per task.
        """
        with self._lock:
            self._fill_scheduled = False
            while self._ready:
                candidates = [
                    w
                    for w in self.workers
                    if w.active
                    and w.connected
                    and not w.retiring
                    and not w.quarantined
                    and w.writer is not None
                    and len(w.outstanding) < self.max_inflight
                    and self._writable(w)
                ]
                if not candidates:
                    return
                worker = min(
                    candidates, key=lambda w: (len(w.outstanding), w.worker_id)
                )
                budget = min(
                    self.max_inflight - len(worker.outstanding), self.batch_size
                )
                entries: List[Tuple[_TaskRecord, Optional[str]]] = []
                while self._ready and len(entries) < budget:
                    task_id = self._ready.popleft()
                    self._ready_set.discard(task_id)
                    record = self._tasks.get(task_id)
                    if record is None or record.worker_id is not None:
                        continue  # completed or already dispatched meanwhile
                    record.attempts += 1
                    record.worker_id = worker.worker_id
                    worker.outstanding.add(task_id)
                    entries.append((record, self._trace_dispatch(record, worker)))
                if not entries:
                    continue
                frames = self._encode_dispatch(worker, entries)
                try:
                    for data in frames:
                        worker.writer.write(data)
                except Exception:  # noqa: BLE001 - transport died under us
                    for record, _ in entries:
                        worker.outstanding.discard(record.task_id)
                        record.worker_id = None
                        self.telemetry.end_span(
                            record.dispatch, outcome="write-failed"
                        )
                        self._enqueue_ready(record.task_id)
                    return
                for data in frames:
                    self._count_frame("tx", len(data))
                for _ in entries:
                    self._count_dispatch(worker)
                if len(entries) > 1 and self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        "repro_dist_batched_tasks_total",
                        "tasks dispatched inside multi-task batch frames",
                    ).labels(farm=self.name).inc(len(entries))

    def _encode_dispatch(
        self,
        worker: DistWorkerHandle,
        entries: List[Tuple[_TaskRecord, Optional[str]]],
    ) -> List[bytes]:
        """Encode one dispatch window on ``worker``'s dialect (lock held).

        v3 sessions: one legacy ``task`` frame per entry, per-payload
        encryption.  v4 singletons keep the legacy ``task`` shape (same
        keys, binary framing); a window of two or more rides one
        ``task_batch``, encrypted whole-frame when the channel is
        secured, with each entry's traceparent riding beside it.
        """
        if worker.wire != 4:
            frames = []
            for record, traceparent in entries:
                message = {
                    "type": "task",
                    "task_id": record.task_id,
                    "payload": encode_payload(record.payload, secured=worker.secured),
                    "enc": worker.secured,
                }
                if traceparent is not None:
                    message["traceparent"] = traceparent
                frames.append(encode_frame(message))
            return frames
        if len(entries) == 1:
            record, traceparent = entries[0]
            message = {
                "type": "task",
                "task_id": record.task_id,
                "payload": record.payload,
            }
            if traceparent is not None:
                message["traceparent"] = traceparent
        else:
            batch = []
            for record, traceparent in entries:
                entry = {"task_id": record.task_id, "payload": record.payload}
                if traceparent is not None:
                    entry["tp"] = traceparent
                batch.append(entry)
            message = {"type": "task_batch", "tasks": batch}
        return [
            encode_frame_v4(message, codec=worker.codec, secured=worker.secured)
        ]

    def _trace_dispatch(
        self, record: _TaskRecord, worker: DistWorkerHandle
    ) -> Optional[str]:
        """Chain one dispatch-attempt span; returns its traceparent.

        The first attempt parents under the task root; every later one
        (crash replay, refused bounce) parents under the attempt it
        supersedes — the replayed execution lands *inside* the failed
        dispatch's subtree, which is what makes the fault story legible.
        """
        if record.root is None:
            return None
        prev = record.dispatch
        record.dispatch_seq += 1
        parent = prev.context if prev is not None else record.root.context
        seed = f"{self.name}/task/{record.task_id}/dispatch/{record.dispatch_seq}"
        record.dispatch = self.telemetry.start_span(
            "task.dispatch",
            actor=self.name,
            context=parent.child(seed),
            worker=worker.worker_id,
            attempt=record.attempts,
            secured=worker.secured,
        )
        return record.dispatch.context.traceparent()

    def _count_dispatch(self, worker: DistWorkerHandle) -> None:
        """Account one task frame written to ``worker`` (lock held)."""
        worker.dispatched += 1
        if not self.telemetry.enabled:
            return
        metrics = self.telemetry.metrics
        metrics.counter(
            "repro_mc_dispatch_total", "tasks handed to a worker queue"
        ).labels(farm=self.name).inc()
        if not worker.secured:
            metrics.counter(
                "repro_mc_insecure_dispatch_total",
                "tasks handed to a worker over an unsecured channel",
            ).labels(farm=self.name).inc()

    def drain_results(self, count: int, timeout: float = 30.0) -> List[Any]:
        """Collect ``count`` results (order of completion, deduplicated)."""
        out: List[Any] = []
        deadline = time.monotonic() + timeout
        for _ in range(count):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"collected {len(out)}/{count} results")
            try:
                out.append(self.results.get(timeout=remaining))
            except queue.Empty:
                raise TimeoutError(f"collected {len(out)}/{count} results") from None
        return out

    # ------------------------------------------------------------------
    # supervision: liveness + replay of due retries
    # ------------------------------------------------------------------
    async def _supervise_coro(self) -> None:
        while True:
            await asyncio.sleep(self.supervise_period)
            try:
                self.supervise_once()
            except Exception:  # noqa: BLE001 - the supervisor must survive
                continue

    def supervise_once(self) -> List[int]:
        """One supervision pass (public so tests can drive it directly).

        Returns the ids of workers declared dead in this pass.
        """
        dead: List[int] = []
        with self._lock:
            now = self.now()
            for w in list(self.workers):
                if not w.active:
                    continue
                proc_exited = w.process is not None and w.process.poll() is not None
                if w.connected:
                    if now - w.last_seen <= self.heartbeat_timeout and not proc_exited:
                        continue
                else:
                    if w.retiring and w.got_bye and not w.outstanding:
                        w.active = False  # clean retirement observed late
                        self._end_worker_span(w, outcome="retired")
                        continue
                    grace = self.connect_grace if not w.ever_connected else 0.0
                    if not proc_exited and now - w.last_seen <= max(
                        grace, self.heartbeat_timeout
                    ):
                        continue
                self._declare_dead(w, now)
                dead.append(w.worker_id)
            self._dispatch_due_retries(now)
        self._request_fill()
        return dead

    def _declare_dead(self, w: DistWorkerHandle, now: float) -> None:
        """Crash handling: replay every un-acked task of ``w`` (lock held)."""
        w.active = False
        w.connected = False
        self._gauge_quarantined()
        if w.secure_waiter is not None:
            # a secure_worker() caller is blocked on this handshake;
            # wake it so it reports failure instead of timing out
            w.secure_challenge = None
            w.secure_waiter.set()
            w.secure_waiter = None
        if w.process is not None and w.process.poll() is None:
            try:
                w.process.kill()  # wedged or partitioned: make it official
            except Exception:  # noqa: BLE001
                pass
        if w.writer is not None:
            writer = w.writer
            w.writer = None
            try:
                self._loop.call_soon_threadsafe(writer.transport.abort)
            except RuntimeError:
                pass
        self.crashes.append((now, w.worker_id))
        self._end_worker_span(w, outcome="crashed")
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_dist_worker_crashes_total",
                "workers declared dead by the supervisor",
            ).labels(farm=self.name).inc()
        for task_id in sorted(w.outstanding):
            record = self._tasks.get(task_id)
            if record is None:
                continue
            # the attempt in flight died with the worker; its span stays
            # referenced by the record so the replay parents under it
            self.telemetry.end_span(record.dispatch, outcome="crashed")
            if record.attempts >= self.max_attempts:
                del self._tasks[task_id]
                self.telemetry.end_span(record.root, outcome="dead-letter")
                self.dead_letters.append(
                    DeadLetter(
                        task_id=task_id,
                        payload=record.payload,
                        attempts=record.attempts,
                        last_worker_id=w.worker_id,
                    )
                )
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        "repro_dist_dead_letter_total",
                        "tasks abandoned after exhausting the replay budget",
                    ).labels(farm=self.name).inc()
                continue
            delay = min(
                self.backoff_base * (2 ** (record.attempts - 1)), self.backoff_cap
            )
            record.worker_id = None
            record.next_retry_at = now + delay
            heapq.heappush(self._retry_heap, (record.next_retry_at, record.task_id))
            self.replays += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "repro_dist_tasks_replayed_total",
                    "task dispatches replayed after a worker death",
                ).labels(farm=self.name).inc()
        w.outstanding.clear()

    def _dispatch_due_retries(self, now: float) -> None:
        """Queue replayed tasks whose backoff has elapsed (lock held).

        Only tasks parked by a replay live on the heap, so the steady
        state costs nothing per tick no matter how deep the live task
        table is — scanning ``_tasks`` here was the supervision loop's
        single biggest cost at 100k-task volumes.
        """
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, task_id = heapq.heappop(self._retry_heap)
            record = self._tasks.get(task_id)
            if (
                record is not None
                and record.worker_id is None
                and record.next_retry_at <= now
            ):
                self._enqueue_ready(task_id)

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def snapshot(self) -> RuntimeFarmSnapshot:
        with self._lock:
            now = self.now()
            live = [w for w in self.workers if w.active and not w.quarantined]
            quarantined = sum(1 for w in self.workers if w.active and w.quarantined)
            lengths = tuple(len(w.outstanding) for w in live)
            _, var, _, _ = queue_length_stats(lengths)
            cutoff = now - self.rate_window
            while self._latencies and self._latencies[0][0] <= cutoff:
                self._latencies.popleft()
            mean_lat = (
                sum(lat for _, lat in self._latencies) / len(self._latencies)
                if self._latencies
                else 0.0
            )
            return RuntimeFarmSnapshot(
                time=now,
                arrival_rate=self.arrival_est.rate(now),
                departure_rate=self.departure_est.rate(now),
                num_workers=len(live),
                queue_lengths=lengths,
                queue_variance=var,
                completed=self.completed,
                pending=len(self._tasks),
                mean_latency=mean_lat,
                quarantined=quarantined,
            )

    @property
    def num_workers(self) -> int:
        """Serving capacity: live workers past the admission gate."""
        return sum(1 for w in self.workers if w.active and not w.quarantined)

    @property
    def quarantined_workers(self) -> int:
        return sum(1 for w in self.workers if w.active and w.quarantined)

    def _find_worker(self, worker_id: int) -> Optional[DistWorkerHandle]:
        for w in self.workers:
            if w.worker_id == worker_id:
                return w
        return None

    # ------------------------------------------------------------------
    # actuators
    # ------------------------------------------------------------------
    def _register_worker(
        self,
        *,
        process: Optional[subprocess.Popen],
        secured: bool = False,
        quarantined: bool = False,
    ) -> DistWorkerHandle:
        """Create and track one worker handle (lock held by caller)."""
        handle = DistWorkerHandle(
            worker_id=self._next_id,
            process=process,
            secured=secured,
            quarantined=quarantined,
            spawned_at=self.now(),
            last_seen=self.now(),
        )
        self._next_id += 1
        self.workers.append(handle)
        self._gauge_quarantined()
        if self.telemetry.enabled:
            handle.span = self.telemetry.start_span(
                "dist.worker",
                actor=self.name,
                worker=handle.worker_id,
                local=process is not None,
            )
        return handle

    def _end_worker_span(self, handle: DistWorkerHandle, *, outcome: str) -> None:
        if handle.span is not None:
            self.telemetry.end_span(
                handle.span, outcome=outcome, completed=handle.reported_completed
            )
            handle.span = None

    def add_worker(
        self,
        *,
        secured: bool = False,
        quarantined: bool = False,
        require_secure: bool = False,
    ) -> DistWorkerHandle:
        """Spawn one local worker process and point it at the coordinator.

        ``require_secure`` spawns the worker with ``--require-secure``,
        so the admission gate is enforced on *both* ends of the wire:
        the coordinator never dispatches to a quarantined worker, and
        the worker itself bounces any task frame (e.g. from a hand-
        rolled client) that beats the handshake.
        """
        with self._lock:
            # quarantined workers count against the limit: they hold a
            # real executor slot even while held out of dispatch
            if sum(1 for w in self.workers if w.active) >= self.max_workers:
                raise RuntimeError(f"worker limit {self.max_workers} reached")
            worker_id = self._next_id  # reserved by _register_worker below
            cmd = [
                sys.executable,
                "-m",
                "repro.runtime.dist_worker",
                "--host",
                self._host,
                "--port",
                str(self.port),
                "--worker-id",
                str(worker_id),
                "--fn",
                self.fn_spec,
                "--heartbeat-period",
                str(self.heartbeat_period),
            ]
            if require_secure:
                cmd.append("--require-secure")
            if self.codec != "auto":
                # a pinned farm spawns workers that offer exactly that
                # codec, so negotiation cannot land anywhere else
                cmd += ["--codec", self.codec]
            if self.worker_reconnect_attempts > 0:
                cmd += ["--reconnect-attempts", str(self.worker_reconnect_attempts)]
            env = dict(os.environ)
            # the child must see the parent's exact import surface — the
            # task function may live in a package only sys.path knows about
            env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
            process = subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL)
            return self._register_worker(
                process=process, secured=secured, quarantined=quarantined
            )

    def adopt_worker(
        self,
        worker_id: int,
        *,
        process: Optional[subprocess.Popen] = None,
        quarantined: bool = False,
    ) -> DistWorkerHandle:
        """Pre-register a worker that already exists (standby promotion).

        A promoted coordinator inherits the dead one's surviving worker
        processes: each keeps its old id, so the ``reattach`` frame it
        sends when it redials this port finds its registration and
        reactivates it.  The handle starts unconnected and *unsecured* —
        channel trust does not survive a coordinator crash — and
        ``connect_grace`` applies until the worker actually reattaches.
        """
        with self._lock:
            if self._find_worker(worker_id) is not None:
                raise ValueError(f"worker id {worker_id} already registered")
            if sum(1 for w in self.workers if w.active) >= self.max_workers:
                raise RuntimeError(f"worker limit {self.max_workers} reached")
            handle = DistWorkerHandle(
                worker_id=worker_id,
                process=process,
                quarantined=quarantined,
                spawned_at=self.now(),
                last_seen=self.now(),
            )
            self._next_id = max(self._next_id, worker_id + 1)
            self.workers.append(handle)
            self._gauge_quarantined()
            if self.telemetry.enabled:
                handle.span = self.telemetry.start_span(
                    "dist.worker",
                    actor=self.name,
                    worker=handle.worker_id,
                    local=process is not None,
                    adopted=True,
                )
            return handle

    def secure_worker(self, worker_id: int, timeout: float = 10.0) -> bool:
        """Secure one worker's channel via the wire-level handshake.

        Blocks (off the loop thread) until the worker proves possession
        of the shared key, then flips ``secured`` so every subsequent
        task payload to it travels encrypted.  Returns ``False`` on an
        unknown/dead worker, a connection that never appears, a bad
        proof, or timeout — the caller must *not* admit the worker in
        that case.
        """
        if not self.telemetry.enabled:
            return self._secure_worker_inner(worker_id, timeout)
        span = self.telemetry.start_span(
            "dist.secure", actor=self.name, worker=worker_id
        )
        ok = False
        try:
            ok = self._secure_worker_inner(worker_id, timeout)
            return ok
        finally:
            self.telemetry.end_span(span, outcome="secured" if ok else "failed")

    def _secure_worker_inner(self, worker_id: int, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        with self._lock:
            w = self._find_worker(worker_id)
            if w is None or not w.active:
                return False
            if w.secured:
                return True
        # wait for the connection: a just-spawned worker may still be
        # importing its task function
        while True:
            with self._lock:
                if not w.active:
                    return False
                if w.connected and w.writer is not None:
                    break
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)
        waiter = threading.Event()
        frame = None
        with self._lock:
            if not (w.active and w.connected and w.writer is not None):
                return False
            if w.secured:
                return True
            if w.secure_waiter is not None:
                # another thread's handshake is already in flight (e.g.
                # the GM commit racing the reactive security tick): join
                # it instead of overwriting its challenge — a second
                # challenge would make the first proof verify against the
                # wrong nonce
                waiter = w.secure_waiter
            else:
                w.secure_challenge = make_challenge()
                w.secure_waiter = waiter
                frame = self._encode_control(
                    w, {"type": "secure", "challenge": w.secure_challenge}
                )
            writer = w.writer
        if frame is not None:
            try:
                self._loop.call_soon_threadsafe(writer.write, frame)
            except RuntimeError:  # loop already closed
                return False
            self._count_frame("tx", len(frame))
        if not waiter.wait(max(0.0, deadline - time.monotonic())):
            with self._lock:
                # only the handshake owner tears the state down, and only
                # if it is still the current handshake — a joiner timing
                # out early must not yank a live exchange out from under
                # the owner (or a proof still in flight)
                if frame is not None and w.secure_waiter is waiter:
                    w.secure_challenge = None
                    w.secure_waiter = None
            return False
        with self._lock:
            return w.secured

    def admit_worker(self, worker_id: int) -> bool:
        """Lift the admission gate: the worker joins the dispatch set."""
        with self._lock:
            w = self._find_worker(worker_id)
            if w is None or not w.active:
                return False
            w.quarantined = False
            self._gauge_quarantined()
        self._request_fill()
        return True

    def _gauge_quarantined(self) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge(
                "repro_mc_quarantined_workers", "workers held at the admission gate"
            ).labels(farm=self.name).set(
                sum(1 for w in self.workers if w.active and w.quarantined)
            )

    def _wait_for_connections(self, count: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if sum(1 for w in self.workers if w.connected) >= count:
                    return
                exited = [
                    w.worker_id
                    for w in self.workers
                    if w.process is not None
                    and w.process.poll() is not None
                    and not w.ever_connected
                ]
            if exited:
                raise RuntimeError(
                    f"worker(s) {exited} exited before connecting — is the task "
                    f"function importable as {self.fn_spec!r}?"
                )
            time.sleep(0.01)
        raise RuntimeError(f"workers failed to connect within {timeout}s")

    def remove_worker(self) -> Optional[DistWorkerHandle]:
        """Retire the newest worker gracefully.

        The poison frame queues *behind* tasks already sent to the
        victim, so it drains its window before exiting; the supervisor
        replays anything still un-acked if it dies instead.
        """
        with self._lock:
            live = [
                w for w in self.workers if w.active and not w.retiring and not w.quarantined
            ]
            if len(live) <= 1:
                return None
            victim = live[-1]
            victim.retiring = True
            writer = victim.writer
            poison = self._encode_control(victim, {"type": "poison"})
        if writer is not None:
            try:
                self._loop.call_soon_threadsafe(writer.write, poison)
            except RuntimeError:
                pass
        # not yet connected: _on_connection poisons it right after welcome
        return victim

    def balance_load(self) -> int:
        """Nothing to move, by construction.

        Tasks queue centrally and flow into bounded per-worker windows
        (``max_inflight``), so no worker can hoard a backlog another
        worker could steal — the imbalance the thread/process farms
        correct here cannot arise.  Returns 0.
        """
        return 0

    def secure_all(self) -> None:
        """Encrypt every future task payload on the wire."""
        with self._lock:
            for w in self.workers:
                w.secured = True

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def inject_crash(self, worker_id: Optional[int] = None) -> Optional[int]:
        """SIGKILL one live local worker process (the newest, unless given).

        For an attached worker with no local process, falls back to
        :meth:`drop_connection` semantics.  Detection, replay and
        capacity recovery then proceed through the ordinary
        supervision/rule machinery — nothing is short-circuited.
        """
        with self._lock:
            victim = self._pick_victim(worker_id)
            if victim is None:
                return None
            process = victim.process
        if process is None:
            return self.drop_connection(victim.worker_id)
        try:
            process.kill()
        except Exception:  # noqa: BLE001
            return None
        return victim.worker_id

    def drop_connection(self, worker_id: Optional[int] = None) -> Optional[int]:
        """Abort one worker's TCP connection — the network-level fault.

        The coordinator sees EOF and replays; the orphaned worker sees
        EOF on its side and exits.  This is the fault a real deployment
        meets most often (a partition, a crashed gateway), and the one
        the dist benchmarks time recovery for.
        """
        with self._lock:
            if worker_id is None:
                # the newest worker may not have connected yet; a fault
                # on a connection that does not exist is a no-op
                live = [
                    w
                    for w in self.workers
                    if w.active
                    and not w.retiring
                    and not w.quarantined
                    and w.writer is not None
                ]
                victim = live[-1] if live else None
            else:
                victim = self._pick_victim(worker_id)
            if victim is None or victim.writer is None:
                return None
            writer = victim.writer
        try:
            self._loop.call_soon_threadsafe(writer.transport.abort)
        except RuntimeError:
            return None
        return victim.worker_id

    def _pick_victim(self, worker_id: Optional[int]) -> Optional[DistWorkerHandle]:
        """Choose a live, serving worker (lock held by caller).

        Default victims are never quarantined: fault tests target
        workers that actually carry load.  An explicit id may name any
        live worker, quarantined or not.
        """
        if worker_id is None:
            live = [
                w for w in self.workers if w.active and not w.retiring and not w.quarantined
            ]
            return live[-1] if live else None
        victim = self._find_worker(worker_id)
        if victim is None or not victim.active:
            return None
        return victim

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def crash(self) -> List[DistWorkerHandle]:
        """Simulate this coordinator process dying (SIGKILL semantics).

        The event loop stops dead: the server socket closes, every
        worker connection aborts (workers see EOF and — if spawned with
        reconnect attempts — start redialing the port), no poison is
        sent and no worker process is touched.  Open dispatch state ends
        as ``coordinator-crashed`` spans; nothing is flushed — a dead
        process flushes nothing.

        Returns the handles whose local worker processes are still
        running: the supervisor hands them to the promoted standby via
        :meth:`adopt_worker`.
        """
        if self._shutdown.is_set():
            return []
        self._shutdown.set()
        with self._lock:
            survivors: List[DistWorkerHandle] = []
            for record in self._tasks.values():
                self.telemetry.end_span(record.dispatch, outcome="coordinator-crashed")
                self.telemetry.end_span(record.root, outcome="coordinator-crashed")
            self._tasks.clear()
            self._ready.clear()
            self._ready_set.clear()
            for w in self.workers:
                if w.active and w.process is not None and w.process.poll() is None:
                    survivors.append(w)
                w.active = False
                w.connected = False
                self._end_worker_span(w, outcome="coordinator-crashed")
                if w.secure_waiter is not None:
                    w.secure_challenge = None
                    w.secure_waiter.set()
                    w.secure_waiter = None
        if not self._loop.is_closed():
            try:
                # _finalize (post-stop) closes the server and aborts
                # every worker transport — the EOF the workers react to
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:
                pass
        self._loop_thread.join(5.0)
        return survivors

    def shutdown(self, timeout: float = 10.0) -> None:
        """Poison every worker, close every socket, stop the loop."""
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        with self._lock:
            workers = list(self.workers)
            writers = [
                (w.writer, self._encode_control(w, {"type": "poison"}))
                for w in workers
                if w.writer is not None
            ]
            for w in workers:
                w.active = False
                self._end_worker_span(w, outcome="shutdown")

        def poison_all() -> None:
            for writer, poison in writers:
                try:
                    writer.write(poison)
                except Exception:  # noqa: BLE001
                    pass

        if self._loop_ready.is_set() and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(poison_all)
            except RuntimeError:
                pass
        deadline = time.monotonic() + timeout
        for w in workers:
            if w.process is None:
                continue
            budget = max(0.05, deadline - time.monotonic())
            try:
                w.process.wait(budget)
            except subprocess.TimeoutExpired:
                w.process.kill()
                try:
                    w.process.wait(1.0)
                except subprocess.TimeoutExpired:
                    pass
        if not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:
                pass
        self._loop_thread.join(max(1.0, deadline - time.monotonic()))
        # abandoned tasks must not leak open spans into the export
        if self.telemetry.enabled:
            self.telemetry.flush()
