"""The substrate contract every live farm backend satisfies.

The paper's behavioural skeletons separate *mechanism* (the pattern
implementation with its monitoring and actuator interfaces) from
*policy* (the rule set the autonomic manager evaluates).  This module
pins down the mechanism side for wall-clock substrates: anything that
implements :class:`FarmBackend` — today the thread farm
(:class:`~repro.runtime.farm_runtime.ThreadFarm`) and the process farm
(:class:`~repro.runtime.process_farm.ProcessFarm`) — can be driven by
:class:`~repro.runtime.controller.FarmController` with the *unmodified*
Figure 5 rules, exactly as the simulated
:class:`~repro.sim.farm.SimFarm` is driven by the simulated managers.

The protocol is structural (:class:`typing.Protocol`): backends do not
inherit from it, they just provide the surface.  ``ThreadFarm`` predates
the protocol and conforms unchanged — the protocol was extracted from
it, not the other way round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Protocol, runtime_checkable

__all__ = ["FarmBackend", "RuntimeFarmSnapshot"]


@dataclass(frozen=True)
class RuntimeFarmSnapshot:
    """One monitoring sample of a live farm (mirrors the sim's FarmSnapshot).

    This is the monitoring half of the ABC surface: every field maps to
    one of the beans the Figure 5 rules match on (arrival/departure rate,
    worker count, queue variance) plus the latency-SLA extension.
    """

    time: float
    arrival_rate: float
    departure_rate: float
    num_workers: int
    queue_lengths: tuple
    queue_variance: float
    completed: int
    pending: int
    #: mean completion latency over the monitoring window (0 if none)
    mean_latency: float = 0.0
    #: workers admitted to the farm but held out of dispatch (the
    #: admission gate of the two-phase intent protocol; not counted in
    #: ``num_workers``, which is serving capacity)
    quarantined: int = 0


@runtime_checkable
class FarmBackend(Protocol):
    """Monitoring + actuator surface of a live task farm.

    Monitoring (sampled each MAPE tick)::

        snapshot()     -> RuntimeFarmSnapshot
        num_workers    -> int (live workers)
        now()          -> float (seconds since the farm started)

    Actuators (fired by rule actions)::

        add_worker()    grow the farm by one executor
        remove_worker() retire one executor, preserving its queued tasks
        balance_load()  redistribute queued tasks across executors
        secure_all()    switch task channels to encrypted payloads

    Admission gate (the mechanism half of the two-phase intent
    protocol — see docs/MULTICONCERN.md)::

        add_worker(quarantined=True)  executor joins held out of dispatch
        secure_worker(worker_id)      secure one executor's channel
        admit_worker(worker_id)       lift the gate; dispatch may begin
        quarantined_workers           how many executors sit at the gate

    A quarantined executor is alive (connected, heart-beating) but the
    dispatcher never selects it — not for fresh submits, not for
    rebalancing, not for fault replays — until ``admit_worker`` commits
    it.  That is the window in which a coordinator secures the channel,
    so no task can ever travel to an executor the security concern has
    not signed off on.

    Stream interface::

        submit(payload)          dispatch one task
        drain_results(n, ...)    collect n results (completion order)
        shutdown()               stop every executor
    """

    name: str

    # -- time base ------------------------------------------------------
    def now(self) -> float: ...

    # -- stream ---------------------------------------------------------
    def submit(self, payload: Any, *, tenant: Optional[str] = None) -> None:
        """Accept one task.  ``tenant`` (optional) is stamped on the
        task's root trace span for per-tenant narration."""
        ...

    def drain_results(self, count: int, timeout: float = 30.0) -> List[Any]: ...

    # -- monitoring -----------------------------------------------------
    def snapshot(self) -> RuntimeFarmSnapshot: ...

    @property
    def num_workers(self) -> int: ...

    # -- actuators ------------------------------------------------------
    def add_worker(self, *, secured: bool = False, quarantined: bool = False) -> Any: ...

    def remove_worker(self) -> Optional[Any]: ...

    def balance_load(self) -> int: ...

    def secure_all(self) -> None: ...

    # -- admission gate -------------------------------------------------
    def secure_worker(self, worker_id: int) -> bool: ...

    def admit_worker(self, worker_id: int) -> bool: ...

    @property
    def quarantined_workers(self) -> int: ...

    # -- shutdown -------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None: ...
