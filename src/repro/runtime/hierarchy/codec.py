"""Contract ↔ JSON codec for the parent ↔ shard wire links.

The shard hierarchy re-assigns sub-contracts at run time — over a real
TCP link when the shard is a :class:`~repro.runtime.dist_farm.DistFarm`
coordinator — so contracts must cross the same length-prefixed JSON
frame layer the dist protocol uses (:mod:`repro.runtime.dist_proto`).
Like the task payloads there, the encoding is self-describing JSON, not
pickle: a ``contract`` frame seen in ``tcpdump`` reads as what it is.

Only the contract types a shard's :class:`FarmController` can enforce
(plus the boolean security concern and composites of those) are
encodable; asking for anything else is a programming error surfaced
eagerly on the *sending* side.
"""

from __future__ import annotations

from typing import Any, Dict

from ...core.contracts import (
    BestEffortContract,
    CompositeContract,
    Contract,
    ContractError,
    MaxLatencyContract,
    MinThroughputContract,
    RateContract,
    SecurityContract,
    ThroughputRangeContract,
)

__all__ = ["contract_to_wire", "contract_from_wire"]


def contract_to_wire(contract: Contract) -> Dict[str, Any]:
    """Encode a contract as a JSON-safe dict (raises for exotic types)."""
    if isinstance(contract, ThroughputRangeContract):
        return {"kind": "throughput_range", "low": contract.low, "high": contract.high}
    if isinstance(contract, MinThroughputContract):
        return {"kind": "min_throughput", "target": contract.target}
    if isinstance(contract, RateContract):
        return {"kind": "rate", "rate": contract.rate}
    if isinstance(contract, MaxLatencyContract):
        return {"kind": "max_latency", "limit": contract.limit}
    if isinstance(contract, BestEffortContract):
        return {"kind": "best_effort"}
    if isinstance(contract, SecurityContract):
        return {"kind": "security"}
    if isinstance(contract, CompositeContract):
        return {
            "kind": "composite",
            "parts": [contract_to_wire(p) for p in contract.parts],
        }
    raise ContractError(
        f"{type(contract).__name__} cannot cross the shard wire"
    )


def contract_from_wire(data: Dict[str, Any]) -> Contract:
    """Decode :func:`contract_to_wire` output (raises on malformed data)."""
    try:
        kind = data["kind"]
        if kind == "throughput_range":
            return ThroughputRangeContract(float(data["low"]), float(data["high"]))
        if kind == "min_throughput":
            return MinThroughputContract(target=float(data["target"]))
        if kind == "rate":
            return RateContract(rate=float(data["rate"]))
        if kind == "max_latency":
            return MaxLatencyContract(limit=float(data["limit"]))
        if kind == "best_effort":
            return BestEffortContract()
        if kind == "security":
            return SecurityContract()
        if kind == "composite":
            return CompositeContract([contract_from_wire(p) for p in data["parts"]])
    except (KeyError, TypeError, ValueError) as exc:
        raise ContractError(f"malformed wire contract {data!r}: {exc}") from exc
    raise ContractError(f"unknown wire contract kind {kind!r}")
