"""One shard of a :class:`ShardedFarm`: a full farm under its own AM.

A shard is exactly the paper's managed component, unchanged: a
:class:`~repro.runtime.backend.FarmBackend` (thread, process or dist)
with a :class:`~repro.runtime.controller.FarmController` running the
unmodified Figure 5 rule set against its *sub*-contract.  The only
additions are the reporting surface the parent manager consumes:

* :meth:`FarmShard.report` — a :class:`ShardReport` combining the
  farm's monitor snapshot with the violations the shard's controller
  raised since the previous report (the upward half of §3.1's
  "violations propagate to the parent");
* :meth:`FarmShard.set_budget` — the downward capacity lever: the
  parent adjusts ``FARM_MAX_NUM_WORKERS`` so the shard's own rules can
  (or can no longer) grow it, actively shrinking when the shard already
  exceeds its new budget;
* :meth:`FarmShard.assign_contract` — sub-contract (re)assignment,
  forwarded to the controller's atomic swap.

Everything here is substrate-agnostic; whether the parent calls these
methods directly (:class:`LocalShardLink`) or via ``contract``/``poll``
frames over TCP (:class:`TcpShardLink`) is the wire layer's business.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ...core.contracts import Contract
from ...obs.telemetry import NOOP, Telemetry
from ..backend import FarmBackend
from ..controller import FarmController

__all__ = ["FarmShard", "ShardReport"]


@dataclass
class ShardReport:
    """One monitoring sample a shard sends up to its parent.

    JSON-serialisable by construction (``violations`` are
    ``[time, kind]`` pairs) so the same dataclass crosses the TCP link
    unchanged — the parent cannot tell a local shard from a remote one
    by its reports.
    """

    shard_id: int
    time: float
    arrival_rate: float
    departure_rate: float
    num_workers: int
    budget: int
    completed: int
    pending: int
    mean_latency: float
    queue_variance: float
    contract: str = ""
    violations: List[Tuple[float, str]] = field(default_factory=list)

    def to_wire(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ShardReport":
        fields = dict(data)
        fields["violations"] = [
            (float(t), str(kind)) for t, kind in fields.get("violations", [])
        ]
        return cls(**fields)


class FarmShard:
    """A farm + its Figure 5 controller, packaged as one managed shard."""

    def __init__(
        self,
        shard_id: int,
        farm: FarmBackend,
        contract: Contract,
        *,
        control_period: float = 0.5,
        budget: int = 16,
        telemetry: Optional[Telemetry] = None,
        name: Optional[str] = None,
    ) -> None:
        self.shard_id = shard_id
        self.farm = farm
        self.name = name or f"shard{shard_id}"
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.controller = FarmController(
            farm,
            contract,
            control_period=control_period,
            max_workers=budget,
            telemetry=telemetry,
            name=f"AM_{self.name}",
        )
        # the budget is a hard cap: mirror it onto the farm itself so a
        # refused grow becomes a noLocalPlan violation (the starvation
        # signal the parent rebalances on) instead of silent overgrowth
        farm.max_workers = budget
        self._lock = threading.Lock()
        self._violation_cursor = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FarmShard":
        self.controller.start()
        return self

    def stop(self) -> None:
        self.controller.stop()

    def shutdown(self) -> None:
        self.controller.stop()
        self.farm.shutdown()

    # ------------------------------------------------------------------
    # the parent-facing management surface
    # ------------------------------------------------------------------
    @property
    def budget(self) -> int:
        return self.controller.constants.FARM_MAX_NUM_WORKERS

    def assign_contract(self, contract: Contract) -> None:
        """Swap this shard's sub-contract (atomic w.r.t. its MAPE cycle)."""
        self.controller.assign_contract(contract)

    def set_budget(self, budget: int) -> int:
        """Re-cap this shard's worker budget; shrink actively if over it.

        Returns the number of workers actually removed (0 when the shard
        was already within the new budget).  Removal drains gracefully —
        the backend's ``remove_worker`` poisons a worker *after* its
        queued tasks, so no task is lost by a shrink.
        """
        if budget < 1:
            raise ValueError("shard budget must be at least 1")
        self.controller.constants.FARM_MAX_NUM_WORKERS = budget
        self.farm.max_workers = budget
        removed = 0
        while self.farm.num_workers > budget:
            if self.farm.remove_worker() is None:
                break
            removed += 1
        return removed

    def report(self) -> ShardReport:
        """Snapshot + violations raised since the last report."""
        snap = self.farm.snapshot()
        with self._lock:
            violations = self.controller.violations
            fresh = list(violations[self._violation_cursor:])
            self._violation_cursor = len(violations)
        return ShardReport(
            shard_id=self.shard_id,
            time=snap.time,
            arrival_rate=snap.arrival_rate,
            departure_rate=snap.departure_rate,
            num_workers=snap.num_workers,
            budget=self.budget,
            completed=snap.completed,
            pending=snap.pending,
            mean_latency=snap.mean_latency,
            queue_variance=snap.queue_variance,
            contract=self.controller.contract.describe(),
            violations=fresh,
        )
