"""The farm-of-farms: a parent manager over N live farm shards.

This is the paper's §3.1 hierarchy made live: a root SLA arrives at the
parent, :func:`~repro.core.contracts.split_rate_contract` solves it
into per-shard sub-contracts whose rates sum *exactly* to the root's,
and each shard — a full :class:`~repro.runtime.backend.FarmBackend`
under its own unmodified Figure 5 controller — enforces its slice
autonomously.  The parent runs its own MAPE loop on top:

* **monitor** — poll every shard link for a
  :class:`~repro.runtime.hierarchy.shard.ShardReport` (over TCP
  ``poll``/``report``/``violation`` frames when the shard is a
  DistFarm coordinator); aggregate shard violations into the parent's
  record, the upward half of "violations propagate to the parent";
* **analyse** — judge the root contract against the *aggregate* sample
  (rates are additive across shards — the invariant the exact rate
  split preserves) and classify each shard as starving (capacity-capped
  and missing its slice with work waiting) or donor (idle headroom);
* **plan** — pick one unit of capacity to move from the most
  over-provisioned donor to the most starving shard, if any;
* **execute** — re-cap both shards' budgets over their links (the
  donor shrinks gracefully: removal poisons a worker *behind* its
  queued tasks, so rebalancing never loses or duplicates a task) and
  re-solve the root SLA across the new budget weights via
  :func:`~repro.core.contracts.split_rate_contract_weighted`.

On top rides the multi-tenant layer (:mod:`.tenants`): submissions
carry a tenant name, pass the admission gate (accept / queue /
reject), and queued backlogs drain through the stride scheduler in
weighted fair share before entering the shard tree.  The tenant name
is stamped on each task's root trace span, so
``python -m repro.obs.explain --tenant NAME`` narrates one tenant's
story end-to-end from an export.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...core.contracts import (
    Contract,
    split_rate_contract,
    split_rate_contract_weighted,
)
from ...obs.telemetry import NOOP, Telemetry
from .shard import FarmShard, ShardReport
from .tenants import Admission, FairShareScheduler, TenantRegistry
from .wire import ShardAgent, ShardLink, connect_shard

__all__ = ["ShardedFarm", "RebalanceEvent", "make_shard_backend"]


def make_shard_backend(
    backend: str,
    fn: Callable[[Any], Any],
    *,
    initial_workers: int,
    max_workers: int,
    name: str,
    telemetry: Optional[Telemetry] = None,
    **kwargs: Any,
):
    """Build one shard's :class:`FarmBackend` (thread/process/dist)."""
    if backend == "thread":
        from ..farm_runtime import ThreadFarm

        return ThreadFarm(
            fn,
            initial_workers=initial_workers,
            max_workers=max_workers,
            name=name,
            telemetry=telemetry,
            **kwargs,
        )
    if backend == "process":
        from ..process_farm import ProcessFarm

        return ProcessFarm(
            fn,
            initial_workers=initial_workers,
            max_workers=max_workers,
            name=name,
            telemetry=telemetry,
            **kwargs,
        )
    if backend == "dist":
        from ..dist_farm import DistFarm

        return DistFarm(
            fn,
            initial_workers=initial_workers,
            max_workers=max_workers,
            name=name,
            telemetry=telemetry,
            **kwargs,
        )
    raise ValueError(f"unknown shard backend {backend!r}")


@dataclass
class RebalanceEvent:
    """One capacity move the parent executed."""

    time: float
    from_shard: int
    to_shard: int
    amount: int
    #: seconds from first starving observation to the budget transfer
    latency: float


class ShardedFarm:
    """N farm shards under one parent manager and one root SLA."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        *,
        contract: Contract,
        shards: int = 2,
        backend: str = "thread",
        initial_workers_per_shard: int = 1,
        max_workers_total: int = 8,
        control_period: float = 0.25,
        rebalance_cooldown: Optional[float] = None,
        registry: Optional[TenantRegistry] = None,
        telemetry: Optional[Telemetry] = None,
        name: str = "hfarm",
        over_wire: Optional[bool] = None,
        autostart: bool = True,
        shard_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        if max_workers_total < shards:
            raise ValueError(
                f"total budget {max_workers_total} cannot cover {shards} shards"
            )
        self.name = name
        self.backend = backend
        self.contract = contract
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.control_period = control_period
        self.rebalance_cooldown = (
            rebalance_cooldown if rebalance_cooldown is not None else 2 * control_period
        )
        self.max_workers_total = max_workers_total
        self.registry = registry
        self.scheduler = FairShareScheduler(registry) if registry else None
        #: management plane over TCP frames (default: only for dist shards)
        self.over_wire = over_wire if over_wire is not None else (backend == "dist")

        # initial budgets: spread the total as evenly as integers allow
        base, extra = divmod(max_workers_total, shards)
        self.budgets = [base + (1 if i < extra else 0) for i in range(shards)]
        self.sub_contracts = split_rate_contract(contract, shards)

        self.shards: List[FarmShard] = []
        self.links: List[ShardLink] = []
        self.agents: List[Optional[ShardAgent]] = []
        kwargs = dict(shard_kwargs or {})
        for i in range(shards):
            farm = make_shard_backend(
                backend,
                fn,
                initial_workers=min(initial_workers_per_shard, self.budgets[i]),
                max_workers=max_workers_total,
                name=f"{name}-s{i}",
                telemetry=telemetry,
                **kwargs,
            )
            shard = FarmShard(
                i,
                farm,
                self.sub_contracts[i],
                control_period=control_period,
                budget=self.budgets[i],
                telemetry=telemetry,
                name=f"{name}-s{i}",
            )
            link, agent = connect_shard(
                shard, over_wire=self.over_wire, telemetry=telemetry
            )
            self.shards.append(shard)
            self.links.append(link)
            self.agents.append(agent)

        #: (parent time, shard id, violation kind) aggregated from reports
        self.violations: List[Tuple[float, int, str]] = []
        #: (parent time, description) — the root SLA judged unmet with no move left
        self.root_violations: List[Tuple[float, str]] = []
        self.rebalances: List[RebalanceEvent] = []
        self.last_reports: List[Optional[ShardReport]] = [None] * shards

        self._results: "queue.Queue[Any]" = queue.Queue()
        self._lock = threading.RLock()
        self._t0 = time.monotonic()
        self._submitted = 0
        self._dispatched_per_shard = [0] * shards
        self._shard_vt = [0.0] * shards  # stride dispatch virtual times
        self._starving_since: Dict[int, float] = {}
        self._last_rebalance = -float("inf")
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

        for shard in self.shards:
            collector = threading.Thread(
                target=self._collect_loop,
                args=(shard,),
                name=f"{name}-collect{shard.shard_id}",
                daemon=True,
            )
            collector.start()
            self._threads.append(collector)

        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def now(self) -> float:
        return time.monotonic() - self._t0

    def start(self) -> "ShardedFarm":
        for shard in self.shards:
            shard.start()
        if not any(t.name.endswith("-parent") for t in self._threads if t.is_alive()):
            parent = threading.Thread(
                target=self._parent_loop, name=f"{self.name}-parent", daemon=True
            )
            parent.start()
            self._threads.append(parent)
        return self

    def shutdown(self) -> None:
        self._stop.set()
        for shard in self.shards:
            shard.stop()
        for link in self.links:
            link.close()
        for agent in self.agents:
            if agent is not None:
                agent.close()
        for shard in self.shards:
            shard.farm.shutdown()
        for thread in self._threads:
            thread.join(5.0)
        if self.telemetry.enabled:
            self.telemetry.flush()

    # ------------------------------------------------------------------
    # stream
    # ------------------------------------------------------------------
    def submit(self, payload: Any, *, tenant: Optional[str] = None) -> str:
        """Submit one task; returns the admission verdict.

        Without a tenant (or without a registry) every task is accepted
        straight into the shard tree.  With a tenant, the admission gate
        applies: ``accept`` dispatches now, ``queue`` parks the task in
        the tenant's backlog for the fair-share scheduler, ``reject``
        drops it (the caller sees the verdict and may retry later).
        """
        if tenant is None or self.registry is None:
            self._dispatch(payload, tenant=tenant)
            return Admission.ACCEPT
        verdict = self.registry.admit(tenant, payload, self.now())
        if verdict == Admission.ACCEPT:
            self._dispatch_tenant(tenant, payload)
        return verdict

    def _dispatch(self, payload: Any, *, tenant: Optional[str] = None) -> int:
        """Stride-dispatch one task to a shard, weighted by budget."""
        with self._lock:
            shard_id = min(
                range(len(self.shards)), key=lambda i: self._shard_vt[i]
            )
            self._shard_vt[shard_id] += 1.0 / max(1, self.budgets[shard_id])
            self._submitted += 1
            self._dispatched_per_shard[shard_id] += 1
        self.shards[shard_id].farm.submit(payload, tenant=tenant)
        return shard_id

    def _dispatch_tenant(self, tenant_name: str, payload: Any) -> None:
        self._dispatch(payload, tenant=tenant_name)
        assert self.registry is not None
        self.registry.get(tenant_name).dispatched += 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_tenant_dispatched_total",
                "tasks dispatched into the shard tree per tenant",
            ).labels(tenant=tenant_name).inc()

    def drain_results(self, count: int, timeout: float = 30.0) -> List[Any]:
        """Collect ``count`` results from all shards (completion order)."""
        out: List[Any] = []
        deadline = time.monotonic() + timeout
        for _ in range(count):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"collected {len(out)}/{count} results")
            try:
                out.append(self._results.get(timeout=remaining))
            except queue.Empty:
                raise TimeoutError(f"collected {len(out)}/{count} results") from None
        return out

    def _collect_loop(self, shard: FarmShard) -> None:
        """Funnel one shard's results into the central queue."""
        while not self._stop.is_set():
            try:
                self._results.put(shard.farm.results.get(timeout=0.1))
            except queue.Empty:
                continue

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return sum(shard.farm.num_workers for shard in self.shards)

    @property
    def submitted(self) -> int:
        return self._submitted

    @property
    def completed(self) -> int:
        return sum(shard.farm.completed for shard in self.shards)

    def aggregate_sample(self) -> Dict[str, float]:
        """The parent's monitor view: additive rates, summed counters."""
        reports = [r for r in self.last_reports if r is not None]
        if not reports:
            return {}
        return {
            "arrival_rate": sum(r.arrival_rate for r in reports),
            "departure_rate": sum(r.departure_rate for r in reports),
            "num_workers": sum(r.num_workers for r in reports),
            "pending": sum(r.pending for r in reports),
            "completed": sum(r.completed for r in reports),
            "mean_latency": max(r.mean_latency for r in reports),
        }

    # ------------------------------------------------------------------
    # the parent MAPE loop
    # ------------------------------------------------------------------
    def _parent_loop(self) -> None:
        while not self._stop.wait(self.control_period):
            try:
                self.parent_step()
            except (ConnectionError, RuntimeError, OSError):
                if self._stop.is_set():
                    return
                raise

    def parent_step(self) -> Optional[RebalanceEvent]:
        """One parent MAPE tick (public so tests can drive it)."""
        tel = self.telemetry
        now = self.now()
        with tel.span("hier.cycle", actor=self.name):
            with tel.span("hier.monitor", actor=self.name):
                reports = self._monitor(now)
            with tel.span("hier.plan", actor=self.name) as plan:
                move = self._plan_rebalance(reports, now)
                if tel.enabled and move is not None:
                    plan.set_attribute("move", {
                        "from": move[0], "to": move[1],
                    })
            event: Optional[RebalanceEvent] = None
            with tel.span("hier.execute", actor=self.name):
                if move is not None:
                    event = self._execute_rebalance(*move, now=now)
                self._pump_tenants(now)
        if tel.enabled:
            tel.metrics.counter(
                "repro_hier_parent_ticks_total", "parent MAPE ticks executed"
            ).labels(farm=self.name).inc()
        return event

    def _monitor(self, now: float) -> List[ShardReport]:
        """Poll every shard; aggregate violations and refresh gauges."""
        tel = self.telemetry
        reports: List[ShardReport] = []
        for link in self.links:
            report = link.poll()
            reports.append(report)
            self.last_reports[report.shard_id] = report
            for _when, kind in report.violations:
                self.violations.append((now, report.shard_id, kind))
                if tel.enabled:
                    tel.metrics.counter(
                        "repro_hier_violations_total",
                        "shard violations aggregated by the parent",
                    ).labels(farm=self.name, shard=str(report.shard_id),
                             kind=kind).inc()
                    adaptation = getattr(tel, "adaptation", None)
                    if adaptation is not None:
                        adaptation.violation_observed(
                            kind, farm=self.name, shard=report.shard_id
                        )
            if tel.enabled:
                m = tel.metrics
                labels = dict(farm=self.name, shard=str(report.shard_id))
                m.gauge(
                    "repro_shard_workers", "workers per shard"
                ).labels(**labels).set(report.num_workers)
                m.gauge(
                    "repro_shard_budget", "parent-granted worker budget per shard"
                ).labels(**labels).set(report.budget)
                m.gauge(
                    "repro_shard_departure_rate", "departure rate per shard"
                ).labels(**labels).set(report.departure_rate)
                m.gauge(
                    "repro_shard_pending", "tasks in flight per shard"
                ).labels(**labels).set(report.pending)
        if self.registry is not None:
            self.registry.observe_gauges()
        return reports

    def _sub_low(self, shard_id: int) -> float:
        """The throughput floor of one shard's current sub-contract."""
        sub = self.sub_contracts[shard_id]
        parts = getattr(sub, "parts", [sub])
        for part in parts:
            low = getattr(part, "low", None) or getattr(part, "target", None)
            if low is not None:
                return float(low)
        return 0.0

    def _plan_rebalance(
        self, reports: List[ShardReport], now: float
    ) -> Optional[Tuple[int, int]]:
        """Pick (donor, starving) shard ids, or None.

        A shard is *starving* when it is capacity-capped (workers at its
        parent-granted budget), missing its sub-contract's throughput
        floor, and has work waiting — growth is what its own Figure 5
        rules would do, and only the budget stops them.  A *donor* has
        idle headroom: workers below budget, or no pending work and
        arrivals below its floor.  The root SLA re-solves over the new
        budgets, so the donor's sub-contract shrinks to what it can
        still carry — no rate leaks from the root contract.
        """
        starving: List[ShardReport] = []
        donors: List[ShardReport] = []
        for report in reports:
            low = self._sub_low(report.shard_id)
            capped = report.num_workers >= report.budget
            missing = report.departure_rate < low
            backlogged = report.pending > max(1, report.num_workers)
            idle = report.pending == 0 and report.arrival_rate < low
            if capped and missing and backlogged:
                starving.append(report)
                self._starving_since.setdefault(report.shard_id, now)
            else:
                self._starving_since.pop(report.shard_id, None)
            if report.budget > 1 and (report.num_workers < report.budget or idle):
                donors.append(report)
        if not starving:
            return None
        target = max(starving, key=lambda r: r.pending)
        candidates = [d for d in donors if d.shard_id != target.shard_id]
        if not candidates:
            if now - self._last_rebalance > self.rebalance_cooldown:
                self.root_violations.append(
                    (now, f"shard {target.shard_id} starving with no donor")
                )
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        "repro_hier_root_violations_total",
                        "root SLA unmet with no rebalancing move available",
                    ).labels(farm=self.name).inc()
            return None
        if now - self._last_rebalance < self.rebalance_cooldown:
            return None  # let the previous move take effect first
        donor = max(
            candidates, key=lambda r: (r.budget - r.num_workers, -r.pending)
        )
        return donor.shard_id, target.shard_id

    def _execute_rebalance(
        self, donor_id: int, target_id: int, *, now: float
    ) -> RebalanceEvent:
        """Move one unit of budget donor → target and re-solve the SLA."""
        with self._lock:
            self.budgets[donor_id] -= 1
            self.budgets[target_id] += 1
            new_budgets = list(self.budgets)
        self.links[donor_id].set_budget(new_budgets[donor_id])
        self.links[target_id].set_budget(new_budgets[target_id])
        # re-solve the root SLA proportionally to the new capacity map;
        # the weighted split conserves the root rate exactly, so the
        # shard tree's aggregate demand never drifts from the user's SLA
        self.sub_contracts = split_rate_contract_weighted(
            self.contract, [float(b) for b in new_budgets]
        )
        for link, sub in zip(self.links, self.sub_contracts):
            link.assign_contract(sub)
        latency = now - self._starving_since.get(target_id, now)
        self._starving_since.pop(target_id, None)
        self._last_rebalance = now
        event = RebalanceEvent(
            time=now,
            from_shard=donor_id,
            to_shard=target_id,
            amount=1,
            latency=latency,
        )
        self.rebalances.append(event)
        if self.telemetry.enabled:
            m = self.telemetry.metrics
            m.counter(
                "repro_hier_rebalance_total", "capacity moves between shards"
            ).labels(farm=self.name, source=str(donor_id),
                     target=str(target_id)).inc()
            m.histogram(
                "repro_hier_rebalance_latency_seconds",
                "starvation observed to budget transferred",
            ).labels(farm=self.name).observe(latency)
            adaptation = getattr(self.telemetry, "adaptation", None)
            if adaptation is not None:
                adaptation.plan_committed(
                    "rebalance", farm=self.name, source=donor_id, target=target_id
                )
            self.telemetry.event(
                "hier.rebalance",
                source=donor_id,
                target=target_id,
                latency=latency,
                budgets=new_budgets,
            )
        return event

    def _pump_tenants(self, now: float) -> None:
        if self.scheduler is None:
            return
        for tenant, payload in self.scheduler.pump(now):
            self._dispatch_tenant(tenant.name, payload)
