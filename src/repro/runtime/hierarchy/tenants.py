"""Multi-tenant SLA layer: registry, admission control, fair share.

The paper's SLA machinery binds one user to one application.  A
"millions of users" deployment multiplexes many *tenants* — each with
its own rate SLA — onto one shard tree, which needs three pieces the
paper leaves implicit:

* :class:`TenantRegistry` — the tenants and their
  :class:`RateContract` SLAs, each with a token bucket sized to the
  contracted rate (burst = a configurable multiple of one second's
  quota);
* **admission control** (:meth:`TenantRegistry.admit`) — a tenant over
  its quota is *queued* (bounded backlog) and, past the backlog bound,
  *rejected*; inside quota it is admitted immediately.  This is the
  outermost MAPE actuator: it protects every other tenant's SLA before
  any task reaches the shard tree;
* **weighted fair-share dispatch** (:class:`FairShareScheduler`) —
  queued tenants drain by stride scheduling: each dispatch charges the
  tenant ``1/weight`` of virtual time and the scheduler always serves
  the tenant with the smallest virtual finish time, so over any window
  each backlogged tenant receives capacity proportional to its weight
  (its contracted rate, by default).

Everything observable lands in ``repro_tenant_*`` metrics, labelled by
tenant, so the fair-share error asserted in tests (and reported in
``BENCH_shard.json``) comes from the same counters operators would
watch.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ...core.contracts import RateContract
from ...obs.telemetry import NOOP, Telemetry

__all__ = ["Tenant", "TenantRegistry", "FairShareScheduler", "Admission"]


class Admission:
    """The three admission verdicts."""

    ACCEPT = "accept"
    QUEUE = "queue"
    REJECT = "reject"


class Tenant:
    """One tenant: a rate SLA, a token bucket and its counters."""

    def __init__(
        self,
        name: str,
        sla: RateContract,
        *,
        weight: Optional[float] = None,
        burst: Optional[float] = None,
        max_backlog: int = 1024,
    ) -> None:
        if weight is not None and weight <= 0:
            raise ValueError(f"tenant weight must be positive, got {weight}")
        self.name = name
        self.sla = sla
        self.weight = weight if weight is not None else sla.rate
        #: bucket capacity in tokens (default: two seconds of quota)
        self.burst = burst if burst is not None else max(1.0, 2.0 * sla.rate)
        self.max_backlog = max_backlog
        self.tokens = self.burst
        self.last_refill: Optional[float] = None
        self.backlog: Deque[Any] = deque()
        #: stride-scheduling virtual time (see FairShareScheduler)
        self.virtual_time = 0.0
        self.submitted = 0
        self.admitted = 0
        self.queued = 0
        self.rejected = 0
        self.dispatched = 0

    def refill(self, now: float) -> None:
        """Accrue tokens at the contracted rate since the last refill."""
        if self.last_refill is None:
            self.last_refill = now
            return
        elapsed = max(0.0, now - self.last_refill)
        self.last_refill = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.sla.rate)


class TenantRegistry:
    """The tenants sharing one shard tree, and their admission gate."""

    def __init__(self, *, telemetry: Optional[Telemetry] = None) -> None:
        self.telemetry = telemetry if telemetry is not None else NOOP
        self._tenants: Dict[str, Tenant] = {}
        #: the scheduler's current virtual time: a tenant returning from
        #: an idle spell syncs up to it instead of replaying its unused
        #: past share and starving the incumbents
        self.global_vt = 0.0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        rate: float,
        *,
        weight: Optional[float] = None,
        burst: Optional[float] = None,
        max_backlog: int = 1024,
    ) -> Tenant:
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} already registered")
            tenant = Tenant(
                name,
                RateContract(rate=rate),
                weight=weight,
                burst=burst,
                max_backlog=max_backlog,
            )
            self._tenants[name] = tenant
            return tenant

    def get(self, name: str) -> Tenant:
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise KeyError(f"unknown tenant {name!r}") from None

    def tenants(self) -> List[Tenant]:
        with self._lock:
            return list(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    # ------------------------------------------------------------------
    def _count(self, tenant: Tenant, verdict: str) -> None:
        if not self.telemetry.enabled:
            return
        m = self.telemetry.metrics
        m.counter(
            "repro_tenant_submitted_total", "tasks offered by each tenant"
        ).labels(tenant=tenant.name).inc()
        name = {
            Admission.ACCEPT: "repro_tenant_admitted_total",
            Admission.QUEUE: "repro_tenant_queued_total",
            Admission.REJECT: "repro_tenant_rejected_total",
        }[verdict]
        help_text = {
            Admission.ACCEPT: "tasks admitted within quota",
            Admission.QUEUE: "tasks queued over quota (bounded backlog)",
            Admission.REJECT: "tasks rejected over quota and backlog",
        }[verdict]
        m.counter(name, help_text).labels(tenant=tenant.name).inc()

    def admit(self, name: str, payload: Any, now: float) -> str:
        """Judge one submission against the tenant's quota.

        ``accept`` consumes a token (caller dispatches immediately);
        ``queue`` stores the payload in the tenant's bounded backlog
        (the fair-share scheduler drains it as tokens refill);
        ``reject`` drops it — quota and backlog are both exhausted.
        """
        tenant = self.get(name)
        with self._lock:
            tenant.submitted += 1
            tenant.refill(now)
            if tenant.tokens >= 1.0 and not tenant.backlog:
                tenant.tokens -= 1.0
                tenant.admitted += 1
                verdict = Admission.ACCEPT
            elif len(tenant.backlog) < tenant.max_backlog:
                tenant.backlog.append(payload)
                tenant.queued += 1
                verdict = Admission.QUEUE
            else:
                tenant.rejected += 1
                verdict = Admission.REJECT
        self._count(tenant, verdict)
        return verdict

    def observe_gauges(self) -> None:
        """Refresh per-tenant gauges (called from the parent MAPE tick)."""
        if not self.telemetry.enabled:
            return
        m = self.telemetry.metrics
        with self._lock:
            for tenant in self._tenants.values():
                m.gauge(
                    "repro_tenant_backlog", "tasks waiting in a tenant's backlog"
                ).labels(tenant=tenant.name).set(len(tenant.backlog))
                m.gauge(
                    "repro_tenant_tokens", "admission tokens currently available"
                ).labels(tenant=tenant.name).set(tenant.tokens)
                m.counter(
                    "repro_tenant_dispatched_total",
                    "tasks dispatched into the shard tree per tenant",
                ).labels(tenant=tenant.name).inc(0.0)


class FairShareScheduler:
    """Stride scheduler draining tenant backlogs in weighted fair share.

    ``pump(now)`` releases every backlogged task whose tenant has a
    token, always choosing the backlogged tenant with the smallest
    virtual time and charging it ``1/weight`` per release — the classic
    stride-scheduling invariant: over any interval where tenants stay
    backlogged, dispatch counts are proportional to weights.
    """

    def __init__(self, registry: TenantRegistry) -> None:
        self.registry = registry

    def pump(self, now: float) -> List[Tuple[Tenant, Any]]:
        """Release admissible backlogged tasks, fair-share ordered."""
        released: List[Tuple[Tenant, Any]] = []
        with self.registry._lock:
            backlogged = [t for t in self.registry.tenants() if t.backlog]
            if not backlogged:
                return released
            for tenant in backlogged:
                tenant.refill(now)
                # a tenant returning from an idle spell joins at the
                # scheduler's current virtual time, not at its stale one
                tenant.virtual_time = max(
                    tenant.virtual_time, self.registry.global_vt
                )
            while True:
                eligible = [
                    t for t in backlogged if t.backlog and t.tokens >= 1.0
                ]
                if not eligible:
                    break
                tenant = min(eligible, key=lambda t: t.virtual_time)
                # the chosen (minimum) virtual time IS the current global
                # virtual time of the stride scheduler
                self.registry.global_vt = tenant.virtual_time
                tenant.tokens -= 1.0
                tenant.virtual_time += 1.0 / tenant.weight
                payload = tenant.backlog.popleft()
                tenant.admitted += 1
                released.append((tenant, payload))
        return released
