"""Parent ↔ shard links: direct calls locally, real frames for dist.

The parent manager of a :class:`ShardedFarm` talks to every shard
through one small interface — assign a sub-contract, poll a report —
so the shard tree composes over any mix of substrates:

* :class:`LocalShardLink` — plain method calls on an in-process
  :class:`~repro.runtime.hierarchy.shard.FarmShard` (thread/process
  shards live in the parent's address space anyway);
* :class:`TcpShardLink` → :class:`ShardAgent` — the same interface
  spoken over a real TCP socket with the dist protocol's
  length-prefixed JSON frames, exercising the ``contract`` /
  ``violation`` / ``report`` / ``poll`` vocabulary added to
  :mod:`repro.runtime.dist_proto` in protocol version 2.  A DistFarm
  shard's management plane therefore crosses the wire just like its
  task plane does, and a future remote shard host only needs to speak
  these four frames.

Both ends of the TCP link enforce the protocol-version handshake: a
mismatched peer is refused with an ``error`` frame naming both
versions, never with an opaque mid-stream failure.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import List, Optional, Tuple

from ...core.contracts import Contract
from ...obs.telemetry import NOOP, Telemetry
from ..dist_proto import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    encode_frame,
    version_mismatch_error,
)
from .codec import contract_from_wire, contract_to_wire
from .shard import FarmShard, ShardReport

__all__ = [
    "ShardLink",
    "LocalShardLink",
    "TcpShardLink",
    "ShardAgent",
    "connect_shard",
    "read_frame_blocking",
]

_HEADER = struct.Struct(">I")


def read_frame_blocking(rfile) -> Optional[dict]:
    """Synchronous twin of :func:`repro.runtime.dist_proto.read_frame`.

    Reads one length-prefixed JSON frame from a blocking file-like
    object (``socket.makefile('rb')``); returns ``None`` on EOF or a
    malformed frame, mirroring the async reader's "peer is gone"
    contract.
    """
    try:
        header = rfile.read(_HEADER.size)
        if len(header) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            return None
        body = rfile.read(length)
        if len(body) < length:
            return None
    except (ConnectionError, OSError, ValueError):
        return None
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return message if isinstance(message, dict) else None


class ShardLink:
    """What the parent manager needs from a shard, wire or no wire."""

    shard_id: int

    def assign_contract(self, contract: Contract) -> None:
        raise NotImplementedError

    def set_budget(self, budget: int) -> int:
        raise NotImplementedError

    def poll(self) -> ShardReport:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class LocalShardLink(ShardLink):
    """Direct in-process link (thread/process shards)."""

    def __init__(self, shard: FarmShard) -> None:
        self.shard = shard
        self.shard_id = shard.shard_id

    def assign_contract(self, contract: Contract) -> None:
        self.shard.assign_contract(contract)

    def set_budget(self, budget: int) -> int:
        return self.shard.set_budget(budget)

    def poll(self) -> ShardReport:
        return self.shard.report()

    def close(self) -> None:  # nothing to tear down
        return None


class ShardAgent:
    """TCP server exposing one :class:`FarmShard`'s management plane.

    Listens on an ephemeral loopback port; each connection handshakes
    (``hello``/``welcome`` with protocol versions, exactly like the
    task-plane dist protocol) and then serves ``contract`` / ``poll`` /
    ``budget`` requests.  Violations raised by the shard's controller
    since the previous poll travel as individual ``violation`` frames
    *before* the ``report`` frame answering the poll — the parent sees
    each violation exactly once, in order, tagged with the shard id.
    """

    def __init__(
        self,
        shard: FarmShard,
        *,
        host: str = "127.0.0.1",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.shard = shard
        self.telemetry = telemetry if telemetry is not None else NOOP
        self._server = socket.create_server((host, 0))
        self.host, self.port = self._server.getsockname()[:2]
        self._shutdown = threading.Event()
        self.frames_served = 0
        self._lock = threading.Lock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{shard.name}-agent", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # listening socket closed
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True,
                name=f"{self.shard.name}-agent-conn",
            ).start()

    def _count(self, frame_type: str) -> None:
        with self._lock:
            self.frames_served += 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_hier_wire_frames_total",
                "management-plane frames served by shard agents",
            ).labels(shard=self.shard.name, type=frame_type).inc()

    def _serve(self, conn: socket.socket) -> None:
        rfile = conn.makefile("rb")

        def send(message: dict) -> None:
            conn.sendall(encode_frame(message))

        try:
            hello = read_frame_blocking(rfile)
            if hello is None or hello.get("type") != "hello":
                return
            if hello.get("proto") != PROTOCOL_VERSION:
                send(version_mismatch_error(hello.get("proto"), role="shard agent"))
                return
            send({"type": "welcome", "proto": PROTOCOL_VERSION,
                  "shard_id": self.shard.shard_id})
            self._count("hello")
            while not self._shutdown.is_set():
                frame = read_frame_blocking(rfile)
                if frame is None:
                    return
                kind = frame.get("type")
                if kind == "contract":
                    try:
                        contract = contract_from_wire(frame.get("contract") or {})
                        self.shard.assign_contract(contract)
                        send({"type": "contract-ack",
                              "contract": contract.describe()})
                    except Exception as exc:  # noqa: BLE001 - surfaced to peer
                        send({"type": "error",
                              "error": f"{type(exc).__name__}: {exc}"})
                    self._count("contract")
                elif kind == "budget":
                    try:
                        removed = self.shard.set_budget(int(frame.get("budget", 0)))
                        send({"type": "budget-ack", "removed": removed,
                              "budget": self.shard.budget})
                    except Exception as exc:  # noqa: BLE001 - surfaced to peer
                        send({"type": "error",
                              "error": f"{type(exc).__name__}: {exc}"})
                    self._count("budget")
                elif kind == "poll":
                    report = self.shard.report()
                    for when, violation in report.violations:
                        send({"type": "violation",
                              "shard_id": self.shard.shard_id,
                              "time": when, "kind": violation})
                    send({"type": "report", "report": report.to_wire()})
                    self._count("poll")
                elif kind == "bye":
                    return
                else:
                    send({"type": "error", "error": f"unknown frame type {kind!r}"})
        except (ConnectionError, OSError):
            return
        finally:
            try:
                rfile.close()
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        self._shutdown.set()
        try:
            self._server.close()
        except OSError:
            pass


class TcpShardLink(ShardLink):
    """Client side of :class:`ShardAgent`: the parent's wire link."""

    def __init__(self, host: str, port: int, *, shard_id: int, timeout: float = 10.0) -> None:
        self.shard_id = shard_id
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self.frames_sent = 0
        self._send({"type": "hello", "proto": PROTOCOL_VERSION, "role": "parent"})
        welcome = self._recv()
        if welcome is None or welcome.get("type") == "error":
            detail = (welcome or {}).get("error", "connection closed during handshake")
            self.close()
            raise ConnectionError(f"shard agent refused link: {detail}")
        if welcome.get("type") != "welcome" or welcome.get("proto") != PROTOCOL_VERSION:
            self.close()
            raise ConnectionError(
                f"unexpected shard-agent handshake reply: {welcome!r}"
            )

    def _send(self, message: dict) -> None:
        self._sock.sendall(encode_frame(message))
        self.frames_sent += 1

    def _recv(self) -> Optional[dict]:
        return read_frame_blocking(self._rfile)

    def _request(self, message: dict, expect: str) -> Tuple[dict, List[dict]]:
        """One request/response exchange; collects interleaved pushes."""
        with self._lock:
            self._send(message)
            pushed: List[dict] = []
            while True:
                reply = self._recv()
                if reply is None:
                    raise ConnectionError("shard agent link lost mid-request")
                if reply.get("type") == "error":
                    raise RuntimeError(f"shard agent error: {reply.get('error')}")
                if reply.get("type") == expect:
                    return reply, pushed
                pushed.append(reply)

    def assign_contract(self, contract: Contract) -> None:
        self._request(
            {"type": "contract", "contract": contract_to_wire(contract)},
            expect="contract-ack",
        )

    def set_budget(self, budget: int) -> int:
        reply, _ = self._request(
            {"type": "budget", "budget": budget}, expect="budget-ack"
        )
        return int(reply.get("removed", 0))

    def poll(self) -> ShardReport:
        reply, pushed = self._request({"type": "poll"}, expect="report")
        report = ShardReport.from_wire(reply["report"])
        # `violation` frames precede the report and duplicate its
        # violations list; trust the frames (they are the wire truth)
        # but fall back to the report's own list if none were pushed.
        if pushed:
            report.violations = [
                (float(f.get("time", 0.0)), str(f.get("kind")))
                for f in pushed
                if f.get("type") == "violation"
            ]
        return report

    def close(self) -> None:
        try:
            with self._lock:
                try:
                    self._sock.sendall(encode_frame({"type": "bye"}))
                except OSError:
                    pass
            self._rfile.close()
            self._sock.close()
        except OSError:
            pass


def connect_shard(
    shard: FarmShard, *, over_wire: bool, telemetry: Optional[Telemetry] = None
) -> Tuple[ShardLink, Optional[ShardAgent]]:
    """Wrap a shard in the appropriate link flavour.

    Returns ``(link, agent)``; ``agent`` is ``None`` for local links and
    must outlive the link otherwise.
    """
    if not over_wire:
        return LocalShardLink(shard), None
    agent = ShardAgent(shard, telemetry=telemetry)
    link = TcpShardLink(agent.host, agent.port, shard_id=shard.shard_id)
    return link, agent
