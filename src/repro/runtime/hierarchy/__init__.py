"""Live shard hierarchy: a parent manager over N child farm shards.

The paper's §3.1 contract hierarchy (root SLA → sub-contracts down,
violations back up) running over the real farm backends, plus the
multi-tenant layer that multiplexes many per-tenant rate SLAs onto one
shard tree.  See ``docs/HIERARCHY.md`` for the architecture.

* :class:`ShardedFarm` — the farm-of-farms and its parent MAPE loop
* :class:`FarmShard` / :class:`ShardReport` — one managed shard and
  its upward report
* :class:`LocalShardLink` / :class:`TcpShardLink` /
  :class:`ShardAgent` — the management-plane links (direct calls, or
  ``contract``/``violation``/``report``/``poll`` frames over TCP)
* :class:`TenantRegistry` / :class:`FairShareScheduler` — tenants,
  admission control and weighted fair-share dispatch
* :func:`contract_to_wire` / :func:`contract_from_wire` — the JSON
  contract codec those frames carry
"""

from .codec import contract_from_wire, contract_to_wire
from .shard import FarmShard, ShardReport
from .sharded_farm import RebalanceEvent, ShardedFarm, make_shard_backend
from .tenants import Admission, FairShareScheduler, Tenant, TenantRegistry
from .wire import (
    LocalShardLink,
    ShardAgent,
    ShardLink,
    TcpShardLink,
    connect_shard,
    read_frame_blocking,
)

__all__ = [
    "Admission",
    "FairShareScheduler",
    "FarmShard",
    "LocalShardLink",
    "RebalanceEvent",
    "ShardAgent",
    "ShardLink",
    "ShardReport",
    "ShardedFarm",
    "TcpShardLink",
    "Tenant",
    "TenantRegistry",
    "connect_shard",
    "contract_from_wire",
    "contract_to_wire",
    "make_shard_backend",
    "read_frame_blocking",
]
