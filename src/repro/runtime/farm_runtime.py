"""Thread-based task farm: live execution of the farm behavioural skeleton.

This is the wall-clock counterpart of :class:`repro.sim.farm.SimFarm`:
real worker threads executing a real Python callable over a stream of
tasks, with the same monitoring surface (arrival/departure rates, queue
lengths) and the same actuators (add/remove worker, rebalance, secure).
Python's GIL limits the parallel speed-up for CPU-bound functions
(repro-band note), so the quantitative experiments use the simulator;
this runtime exists to show that the identical manager/rule machinery
drives genuine concurrent execution — see
:class:`~repro.runtime.controller.ThreadFarmController`.

Secured channels are real here: task payloads (pickled) are encrypted by
the emitter and decrypted by the worker with the toy cipher from
:mod:`repro.security.crypto`, so securing a worker has an actual,
measurable cost.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
from collections import deque
from typing import Any, Callable, List, Optional

from ..obs.propagation import TraceContext, task_context
from ..obs.spans import Span
from ..obs.telemetry import NOOP, Telemetry
from ..security.crypto import decrypt, encrypt
from ..sim.metrics import WindowRateEstimator, queue_length_stats
from .backend import RuntimeFarmSnapshot

__all__ = ["ThreadFarm", "ThreadWorker", "RuntimeFarmSnapshot"]

_SECRET = b"repro-channel-key"


class _Poison:
    """Queue sentinel stopping one worker."""


class _TaskTrace:
    """Trace-context bookkeeping riding one task envelope in-process.

    Holds the task's root span and the *current* dispatch-attempt span;
    every re-dispatch (worker removal, rebalance) chains a new attempt
    span under the previous one, so the whole itinerary of a task is one
    tree however many queues it visited.
    """

    __slots__ = ("task_id", "root", "dispatch", "attempt")

    def __init__(self, task_id: int, root: Span) -> None:
        self.task_id = task_id
        self.root = root
        self.dispatch: Optional[Span] = None
        self.attempt = 0


class ThreadWorker:
    """One worker thread with a private task queue."""

    def __init__(
        self,
        farm: "ThreadFarm",
        worker_id: int,
        *,
        secured: bool = False,
        quarantined: bool = False,
    ) -> None:
        self.farm = farm
        self.worker_id = worker_id
        self.secured = secured
        self.quarantined = quarantined
        self.queue: "queue.Queue[Any]" = queue.Queue()
        self.completed = 0
        self.dispatched = 0
        self.active = True
        self._thread = threading.Thread(
            target=self._run, name=f"{farm.name}-w{worker_id}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self.active = False
        self.queue.put(_Poison())

    def join(self, timeout: float = 10.0) -> None:
        self._thread.join(timeout)

    def _run(self) -> None:
        while True:
            item = self.queue.get()
            if isinstance(item, _Poison):
                return
            payload, enc, submitted_at, trace = item
            if enc:
                payload = pickle.loads(decrypt(_SECRET, payload))
            exec_span = self.farm._trace_exec(trace, self.worker_id)
            try:
                result = self.farm.fn(payload)
            except Exception as exc:  # noqa: BLE001 - surfaced via results
                result = exc
            if exec_span is not None:
                self.farm.telemetry.end_span(
                    exec_span,
                    outcome="error" if isinstance(result, Exception) else "ok",
                )
            self.completed += 1
            self.farm._deliver(
                result, secured=self.secured, submitted_at=submitted_at, trace=trace
            )


class ThreadFarm:
    """A live task farm executing ``fn`` over submitted tasks."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        *,
        initial_workers: int = 2,
        name: str = "tfarm",
        rate_window: float = 5.0,
        max_workers: int = 64,
        clock: Callable[[], float] = time.monotonic,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if initial_workers < 1:
            raise ValueError("need at least one worker")
        self.fn = fn
        self.name = name
        self.max_workers = max_workers
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.results: "queue.Queue[Any]" = queue.Queue()
        self._lock = threading.Lock()
        self.workers: List[ThreadWorker] = []
        self._next_id = 0
        self._rr = 0
        self._clock = clock
        self._t0 = clock()
        self.arrival_est = WindowRateEstimator(rate_window, start_time=0.0)
        self.departure_est = WindowRateEstimator(rate_window, start_time=0.0)
        self.rate_window = rate_window
        self._latencies: "deque" = deque()  # (completion_time, latency)
        self.submitted = 0
        self.completed = 0
        self.end_of_stream = False
        for _ in range(initial_workers):
            self.add_worker()

    # ------------------------------------------------------------------
    # time base
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._clock() - self._t0

    # ------------------------------------------------------------------
    # stream
    # ------------------------------------------------------------------
    def submit(
        self,
        payload: Any,
        *,
        tenant: Optional[str] = None,
        traceparent: Optional[str] = None,
    ) -> None:
        """Dispatch one task to an admitted worker (round robin).

        ``tenant`` (optional) names the submitting tenant; it is stamped
        on the task's root span so ``repro.obs.explain --tenant`` can
        reconstruct a single tenant's story from an export.

        ``traceparent`` (optional) parents this farm's span under a
        caller-owned root: the span becomes a ``task.attempt`` child
        instead of a fresh root, which is how a supervisor chains the
        attempts of successive coordinator incarnations into one tree.
        """
        with self._lock:
            self.arrival_est.mark(self.now())
            task_id = self.submitted
            self.submitted += 1
            live = [w for w in self.workers if w.active and not w.quarantined]
            if not live:
                raise RuntimeError("farm has no admitted workers")
            self._rr = (self._rr + 1) % len(live)
            worker = live[self._rr]
            now = self.now()
            trace = self._trace_submit(
                task_id, worker, tenant=tenant, traceparent=traceparent
            )
            if worker.secured:
                worker.queue.put(
                    (encrypt(_SECRET, pickle.dumps(payload)), True, now, trace)
                )
            else:
                worker.queue.put((payload, False, now, trace))
            self._count_dispatch(worker)

    # -- trace context -------------------------------------------------
    def _trace_submit(
        self,
        task_id: int,
        worker: ThreadWorker,
        tenant: Optional[str] = None,
        traceparent: Optional[str] = None,
    ) -> Optional[_TaskTrace]:
        """Open the task's root span + first dispatch attempt (lock held)."""
        if not self.telemetry.enabled:
            return None
        parent = TraceContext.from_traceparent(traceparent) if traceparent else None
        if parent is not None:
            root = self.telemetry.start_span(
                "task.attempt",
                actor=self.name,
                context=parent.child(f"{self.name}/task/{task_id}"),
                task_id=task_id,
                **({"tenant": tenant} if tenant is not None else {}),
            )
        else:
            root = self.telemetry.start_span(
                "task",
                actor=self.name,
                context=task_context(self.name, task_id),
                task_id=task_id,
                **({"tenant": tenant} if tenant is not None else {}),
            )
        trace = _TaskTrace(task_id, root)
        self._trace_dispatch(trace, worker)
        return trace

    def _trace_dispatch(
        self, trace: Optional[_TaskTrace], worker: ThreadWorker, outcome: Optional[str] = None
    ) -> None:
        """Chain one dispatch-attempt span onto a task's trace.

        The first attempt parents under the task root; every later
        attempt parents under the attempt it supersedes, which is what
        makes a replayed task read as one causal chain.
        """
        if trace is None:
            return
        prev = trace.dispatch
        if prev is not None and outcome is not None:
            self.telemetry.end_span(prev, outcome=outcome)
        trace.attempt += 1
        parent = prev.context if prev is not None else trace.root.context
        seed = f"{self.name}/task/{trace.task_id}/dispatch/{trace.attempt}"
        trace.dispatch = self.telemetry.start_span(
            "task.dispatch",
            actor=self.name,
            context=parent.child(seed),
            worker=worker.worker_id,
            attempt=trace.attempt,
            secured=worker.secured,
        )

    def _trace_exec(self, trace: Optional[_TaskTrace], worker_id: int) -> Optional[Span]:
        """Open the worker-side execution span (worker thread)."""
        if trace is None or trace.dispatch is None:
            return None
        dctx = trace.dispatch.context
        return self.telemetry.start_span(
            "task.exec",
            actor=f"{self.name}-w{worker_id}",
            context=dctx.child(f"exec:{worker_id}:{dctx.span_id}"),
            worker=worker_id,
        )

    def _trace_done(self, trace: Optional[_TaskTrace], *, error: bool) -> None:
        if trace is None:
            return
        outcome = "error" if error else "ok"
        self.telemetry.end_span(trace.dispatch, outcome=outcome)
        self.telemetry.end_span(trace.root, outcome=outcome)

    def _count_dispatch(self, worker: ThreadWorker) -> None:
        """Account one task entering ``worker``'s queue (lock held)."""
        worker.dispatched += 1
        if not self.telemetry.enabled:
            return
        metrics = self.telemetry.metrics
        metrics.counter(
            "repro_mc_dispatch_total", "tasks handed to a worker queue"
        ).labels(farm=self.name).inc()
        if not worker.secured:
            metrics.counter(
                "repro_mc_insecure_dispatch_total",
                "tasks handed to a worker over an unsecured channel",
            ).labels(farm=self.name).inc()

    def _deliver(
        self,
        result: Any,
        *,
        secured: bool,
        submitted_at: float = 0.0,
        trace: Optional[_TaskTrace] = None,
    ) -> None:
        self._trace_done(trace, error=isinstance(result, Exception))
        with self._lock:
            now = max(self.now(), self.departure_est._last_mark or 0.0)
            self.departure_est.mark(now)
            self.completed += 1
            self._latencies.append((now, now - submitted_at))
        self.results.put(result)

    def drain_results(self, count: int, timeout: float = 30.0) -> List[Any]:
        """Collect ``count`` results (order of completion)."""
        out = []
        deadline = time.monotonic() + timeout
        for _ in range(count):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"collected {len(out)}/{count} results")
            try:
                out.append(self.results.get(timeout=remaining))
            except queue.Empty:
                raise TimeoutError(f"collected {len(out)}/{count} results") from None
        return out

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def snapshot(self) -> RuntimeFarmSnapshot:
        with self._lock:
            now = self.now()
            live = [w for w in self.workers if w.active and not w.quarantined]
            quarantined = sum(1 for w in self.workers if w.active and w.quarantined)
            lengths = tuple(w.queue.qsize() for w in live)
            _, var, _, _ = queue_length_stats(lengths)
            cutoff = now - self.rate_window
            while self._latencies and self._latencies[0][0] <= cutoff:
                self._latencies.popleft()
            mean_lat = (
                sum(l for _, l in self._latencies) / len(self._latencies)
                if self._latencies
                else 0.0
            )
            return RuntimeFarmSnapshot(
                time=now,
                arrival_rate=self.arrival_est.rate(now),
                departure_rate=self.departure_est.rate(now),
                num_workers=len(live),
                queue_lengths=lengths,
                queue_variance=var,
                completed=self.completed,
                pending=self.submitted - self.completed,
                mean_latency=mean_lat,
                quarantined=quarantined,
            )

    @property
    def num_workers(self) -> int:
        """Serving capacity: live workers past the admission gate."""
        return sum(1 for w in self.workers if w.active and not w.quarantined)

    @property
    def quarantined_workers(self) -> int:
        return sum(1 for w in self.workers if w.active and w.quarantined)

    # ------------------------------------------------------------------
    # actuators
    # ------------------------------------------------------------------
    def add_worker(self, *, secured: bool = False, quarantined: bool = False) -> ThreadWorker:
        with self._lock:
            # quarantined workers count against the limit: they hold a
            # real executor slot even while held out of dispatch
            if sum(1 for w in self.workers if w.active) >= self.max_workers:
                raise RuntimeError(f"worker limit {self.max_workers} reached")
            w = ThreadWorker(self, self._next_id, secured=secured, quarantined=quarantined)
            self._next_id += 1
            self.workers.append(w)
            self._gauge_quarantined()
            return w

    def secure_worker(self, worker_id: int) -> bool:
        """Switch one worker's channel to encrypted payloads.

        In-process queues have no wire to handshake over; securing a
        thread worker is flipping the emitter-side cipher on, exactly
        what :meth:`secure_all` does farm-wide.
        """
        with self._lock:
            for w in self.workers:
                if w.worker_id == worker_id and w.active:
                    w.secured = True
                    return True
        return False

    def admit_worker(self, worker_id: int) -> bool:
        """Lift the admission gate: the worker joins the dispatch set."""
        with self._lock:
            for w in self.workers:
                if w.worker_id == worker_id and w.active:
                    w.quarantined = False
                    self._gauge_quarantined()
                    return True
        return False

    def _gauge_quarantined(self) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge(
                "repro_mc_quarantined_workers", "workers held at the admission gate"
            ).labels(farm=self.name).set(
                sum(1 for w in self.workers if w.active and w.quarantined)
            )

    def remove_worker(self) -> Optional[ThreadWorker]:
        """Retire the newest admitted worker; its queued tasks are re-dispatched."""
        with self._lock:
            live = [w for w in self.workers if w.active and not w.quarantined]
            if len(live) <= 1:
                return None
            victim = live[-1]
            victim.active = False
        # drain outside the lock: submit() re-acquires it
        leftovers = []
        while True:
            try:
                item = victim.queue.get_nowait()
            except queue.Empty:
                break
            if not isinstance(item, _Poison):
                leftovers.append(item)
        victim.queue.put(_Poison())
        with self._lock:
            survivors = [w for w in self.workers if w.active and not w.quarantined]
            for i, item in enumerate(leftovers):
                target = survivors[i % len(survivors)]
                self._trace_dispatch(item[3], target, outcome="redispatched")
                target.queue.put(item)
                self._count_dispatch(target)
        return victim

    def balance_load(self) -> int:
        """Crude rebalance: move tasks from longest to shortest queues.

        Queue sizes are approximate under concurrency; this mirrors the
        best a real runtime can do and is sufficient for the actuator
        contract.
        """
        moved = 0
        with self._lock:
            live = [w for w in self.workers if w.active and not w.quarantined]
            if len(live) < 2:
                return 0
            for _ in range(1000):
                live.sort(key=lambda w: w.queue.qsize())
                shortest, longest = live[0], live[-1]
                if longest.queue.qsize() - shortest.queue.qsize() <= 1:
                    break
                try:
                    item = longest.queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(item, _Poison):
                    longest.queue.put(item)
                    break
                self._trace_dispatch(item[3], shortest, outcome="rebalanced")
                shortest.queue.put(item)
                self._count_dispatch(shortest)
                moved += 1
        return moved

    def secure_all(self) -> None:
        with self._lock:
            for w in self.workers:
                w.secured = True

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Simulate the coordinator process dying (SIGKILL semantics).

        Thread workers live *inside* the coordinator process, so they
        die with it: every queued envelope is dropped on the floor (its
        spans closed as ``coordinator-crashed``), every worker is
        stopped, and nothing is flushed — a dead process flushes
        nothing.  A task already executing may still finish and deliver
        into ``results``; the supervisor's journal dedup makes that
        at-least-once tail harmless.
        """
        with self._lock:
            workers = list(self.workers)
            for w in workers:
                w.active = False
        for w in workers:
            while True:
                try:
                    item = w.queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(item, _Poison):
                    continue
                trace = item[3]
                if trace is not None:
                    self.telemetry.end_span(trace.dispatch, outcome="coordinator-crashed")
                    self.telemetry.end_span(trace.root, outcome="coordinator-crashed")
            w.queue.put(_Poison())

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every worker (pending tasks are abandoned)."""
        with self._lock:
            workers = list(self.workers)
            for w in workers:
                w.active = False
        for w in workers:
            w.queue.put(_Poison())
        for w in workers:
            w.join(timeout)
        # abandoned tasks must not leak open spans into the export
        if self.telemetry.enabled:
            self.telemetry.flush()
