"""Live (wall-clock, thread-based) runtime: the ProActive analog.

Active objects (:mod:`~.active_object`), a real thread farm with the
same monitoring/actuator surface as the simulated one
(:mod:`~.farm_runtime`), a thread pipeline (:mod:`~.pipeline_runtime`),
and a controller that runs the *same* Figure 5 rule set against the live
farm (:mod:`~.controller`) — mechanism/policy separation made concrete.
"""

from .active_object import ActiveObject, ActiveObjectError, FutureResult
from .controller import ThreadFarmController
from .farm_runtime import RuntimeFarmSnapshot, ThreadFarm, ThreadWorker
from .pipeline_runtime import ThreadPipeline, ThreadStage

__all__ = [
    "ActiveObject",
    "ActiveObjectError",
    "FutureResult",
    "ThreadFarm",
    "ThreadWorker",
    "RuntimeFarmSnapshot",
    "ThreadFarmController",
    "ThreadPipeline",
    "ThreadStage",
]
