"""Live (wall-clock) runtime: the ProActive analog.

Active objects (:mod:`~.active_object`), three real farm substrates
with the same monitoring/actuator surface as the simulated one —
threads (:mod:`~.farm_runtime`), supervised OS processes with crash
replay (:mod:`~.process_farm`), and TCP-connected worker processes
behind an asyncio coordinator (:mod:`~.dist_farm`) — all behind the
:class:`~.backend.FarmBackend` protocol, a thread pipeline
(:mod:`~.pipeline_runtime`), a controller that runs the *same*
Figure 5 rule set against any live backend (:mod:`~.controller`) —
mechanism/policy separation made concrete — and live multi-concern
coordination (:mod:`~.multiconcern`): a general manager running the
two-phase intent protocol over any backend's admission gate.  See
``docs/RUNTIME.md`` and ``docs/MULTICONCERN.md``.
"""

from .active_object import ActiveObject, ActiveObjectError, FutureResult
from .backend import FarmBackend, RuntimeFarmSnapshot
from .controller import FarmController, ThreadFarmController
from .dist_farm import DistFarm, DistWorkerHandle
from .farm_runtime import ThreadFarm, ThreadWorker
from .multiconcern import LiveGeneralManager, WorkerPlacement
from .pipeline_runtime import ThreadPipeline, ThreadStage
from .process_farm import DeadLetter, ProcessFarm, ProcessWorkerHandle

__all__ = [
    "ActiveObject",
    "ActiveObjectError",
    "FutureResult",
    "FarmBackend",
    "FarmController",
    "ThreadFarm",
    "ThreadWorker",
    "RuntimeFarmSnapshot",
    "ThreadFarmController",
    "ThreadPipeline",
    "ThreadStage",
    "ProcessFarm",
    "ProcessWorkerHandle",
    "DeadLetter",
    "DistFarm",
    "DistWorkerHandle",
    "LiveGeneralManager",
    "WorkerPlacement",
]
