"""Process-based task farm: real parallelism, real crash fault-tolerance.

The third substrate behind the Figure 5 rules, after the deterministic
simulator (:class:`repro.sim.farm.SimFarm`) and the thread farm
(:class:`repro.runtime.farm_runtime.ThreadFarm`).  Workers here are OS
processes, so CPU-bound stages genuinely scale past the GIL — and a
worker *death* is a real event (``SIGKILL``-able), not a simulated one.

Fault tolerance follows the paper's §2 framing — the manager "takes care
of performing all those activities needed to restore ... after a fault"
— split between two layers:

* **mechanism (this module)**: every dispatched task is tracked until a
  completion ack returns over the result pipe.  Workers are supervised
  by heartbeats (a daemon thread in each child beats every
  ``heartbeat_period`` even while the main thread grinds a long task).
  When a worker dies, its un-acked tasks are *replayed* to survivors
  with capped exponential backoff; a task that keeps dying is parked in
  the dead-letter list after ``max_attempts`` dispatches.  Replay is
  at-least-once — a task whose ack was in flight at crash time runs
  twice — and the farm dedupes acks by task id, so the *results stream*
  stays exactly-once.
* **policy (the unmodified rules)**: a crash shrinks capacity, measured
  departure rate sags below the contract stripe, and the ordinary
  ``CheckRateLow`` rule fires ``ADD_EXECUTOR`` through
  :class:`~repro.runtime.controller.FarmController` — recovery is just
  contract enforcement, exactly as in the simulated fault experiments.

Telemetry is process-safe by construction: workers only ever *send*
(acks, heartbeats, per-worker completion counters) over the result
pipe; the parent's pump thread is the single writer into the shared
:class:`repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.propagation import TraceContext, make_span_record, task_context
from ..obs.spans import Span
from ..obs.telemetry import NOOP, Telemetry
from ..security.crypto import decrypt, encrypt
from ..sim.metrics import WindowRateEstimator, queue_length_stats
from .backend import RuntimeFarmSnapshot

__all__ = ["ProcessFarm", "ProcessWorkerHandle", "DeadLetter", "default_start_method"]

_SECRET = b"repro-channel-key"

#: poison sentinel understood by the worker loop
_POISON = ("__poison__",)


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheap, closures allowed),
    ``spawn`` otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _worker_main(
    worker_id: int,
    farm_name: str,
    fn: Callable[[Any], Any],
    task_q: "multiprocessing.Queue",
    result_q: "multiprocessing.Queue",
    heartbeat_period: float,
) -> None:
    """Child-process body: drain the task queue, ack every completion.

    A daemon heartbeat thread beats independently of task execution, so
    a worker crunching one long CPU-bound task is still visibly alive;
    only real death (or a wedged process) silences it.

    Each task envelope may carry a ``traceparent`` naming the parent-side
    dispatch span; the worker then records its execution as a span
    *record* (plain dict — the parent has the only SpanRecorder) and
    ships it back on the ``done`` ack, where it is re-parented into the
    coordinator's trace store.  Timestamps are epoch seconds, the same
    base the parent's WallClock uses.
    """
    completed = 0
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_period):
            try:
                result_q.put(("hb", worker_id, completed))
            except Exception:  # noqa: BLE001 - parent gone; nothing to report to
                return

    hb = threading.Thread(target=beat, name=f"pfarm-hb-{worker_id}", daemon=True)
    hb.start()

    while True:
        item = task_q.get()
        if item == _POISON:
            stop.set()
            result_q.put(("bye", worker_id, completed))
            return
        task_id, payload, enc, traceparent = item
        if enc:
            payload = pickle.loads(decrypt(_SECRET, payload))
        started = time.time()
        try:
            result = fn(payload)
        except Exception as exc:  # noqa: BLE001 - surfaced via results
            result = exc
        if isinstance(result, Exception):
            try:  # an unpicklable exception must not wedge the ack path
                pickle.dumps(result)
            except Exception:  # noqa: BLE001
                result = RuntimeError(f"worker {worker_id}: {result!r}")
        span_rec = None
        parent_ctx = TraceContext.from_traceparent(traceparent)
        if parent_ctx is not None:
            # the parent span id is unique per dispatch attempt, so the
            # derived exec span id is too — replays never collide
            ctx = parent_ctx.child(f"exec:{worker_id}:{parent_ctx.span_id}")
            span_rec = make_span_record(
                ctx,
                "task.exec",
                actor=f"{farm_name}-w{worker_id}",
                start=started,
                end=time.time(),
                attributes={
                    "worker": worker_id,
                    "pid": os.getpid(),
                    "outcome": "error" if isinstance(result, Exception) else "ok",
                },
            )
        completed += 1
        result_q.put(("done", worker_id, task_id, result, completed, span_rec))


@dataclass
class _TaskRecord:
    """Parent-side bookkeeping for one not-yet-acknowledged task."""

    task_id: int
    payload: Any
    submitted_at: float
    attempts: int = 0
    worker_id: Optional[int] = None  # None: awaiting (re)dispatch
    next_retry_at: float = 0.0
    # trace context: the task's root span and the current (or most
    # recent) dispatch-attempt span; each new attempt parents under the
    # previous one, so a replayed task reads as one causal chain
    root: Optional[Span] = None
    dispatch: Optional[Span] = None
    dispatch_seq: int = 0


@dataclass(frozen=True)
class DeadLetter:
    """A task abandoned after exhausting its replay budget."""

    task_id: int
    payload: Any
    attempts: int
    last_worker_id: Optional[int]


@dataclass
class ProcessWorkerHandle:
    """Parent-side handle of one worker process."""

    worker_id: int
    process: multiprocessing.Process
    task_queue: "multiprocessing.Queue"
    secured: bool = False
    quarantined: bool = False
    active: bool = True
    retiring: bool = False
    last_seen: float = 0.0
    reported_completed: int = 0
    dispatched: int = 0
    outstanding: set = field(default_factory=set)  # task ids awaiting ack

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid


class ProcessFarm:
    """A live task farm whose executors are supervised OS processes.

    Satisfies the same :class:`~repro.runtime.backend.FarmBackend`
    surface as :class:`~repro.runtime.farm_runtime.ThreadFarm`; the
    extra knobs are all fault-tolerance tuning:

    ``heartbeat_period`` / ``heartbeat_timeout``
        children beat every period; a worker silent for the timeout (or
        whose process has exited) is declared dead.
    ``backoff_base`` / ``backoff_cap``
        replay delay for attempt *n* is ``min(base * 2**(n-1), cap)``.
    ``max_attempts``
        dispatch budget per task before it is dead-lettered.
    ``start_method``
        multiprocessing start method; ``fork`` (default on POSIX) allows
        closures as ``fn``, ``spawn`` needs a module-level callable.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        *,
        initial_workers: int = 2,
        name: str = "pfarm",
        rate_window: float = 5.0,
        max_workers: int = 64,
        heartbeat_period: float = 0.1,
        heartbeat_timeout: float = 2.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        max_attempts: int = 5,
        supervise_period: float = 0.05,
        start_method: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if initial_workers < 1:
            raise ValueError("need at least one worker")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.fn = fn
        self.name = name
        self.max_workers = max_workers
        self.heartbeat_period = heartbeat_period
        self.heartbeat_timeout = heartbeat_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_attempts = max_attempts
        self.supervise_period = supervise_period
        self.telemetry = telemetry if telemetry is not None else NOOP
        self._ctx = multiprocessing.get_context(start_method or default_start_method())
        self._clock = clock
        self._t0 = clock()

        self.results: "queue.Queue[Any]" = queue.Queue()
        self._lock = threading.RLock()
        self.workers: List[ProcessWorkerHandle] = []
        self._next_id = 0
        self._rr = 0
        self._result_q: "multiprocessing.Queue" = self._ctx.Queue()

        self.arrival_est = WindowRateEstimator(rate_window, start_time=0.0)
        self.departure_est = WindowRateEstimator(rate_window, start_time=0.0)
        self.rate_window = rate_window
        self._latencies: "deque" = deque()  # (completion_time, latency)

        self._tasks: Dict[int, _TaskRecord] = {}
        self._completed_ids: set = set()
        self._task_seq = 0
        self.submitted = 0
        self.completed = 0
        self.dead_letters: List[DeadLetter] = []
        self.crashes: List[Tuple[float, int]] = []  # (time, worker_id)
        self.replays = 0
        self.duplicates = 0

        self._shutdown = threading.Event()
        for _ in range(initial_workers):
            self.add_worker()
        self._pump = threading.Thread(
            target=self._pump_loop, name=f"{name}-pump", daemon=True
        )
        self._pump.start()
        self._supervisor = threading.Thread(
            target=self._supervise_loop, name=f"{name}-supervisor", daemon=True
        )
        self._supervisor.start()

    # ------------------------------------------------------------------
    # time base
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._clock() - self._t0

    # ------------------------------------------------------------------
    # stream
    # ------------------------------------------------------------------
    def submit(
        self,
        payload: Any,
        *,
        tenant: Optional[str] = None,
        traceparent: Optional[str] = None,
    ) -> None:
        """Track one task and dispatch it to a worker (round robin).

        With ``traceparent`` (a supervisor resubmitting across a
        coordinator crash) this farm's span is a ``task.attempt`` child
        of the caller's root instead of a fresh root, so every
        incarnation's attempt chains into one tree.
        """
        with self._lock:
            now = self.now()
            self.arrival_est.mark(now)
            self.submitted += 1
            task_id = self._task_seq
            self._task_seq += 1
            record = _TaskRecord(task_id=task_id, payload=payload, submitted_at=now)
            if self.telemetry.enabled:
                parent = (
                    TraceContext.from_traceparent(traceparent) if traceparent else None
                )
                if parent is not None:
                    record.root = self.telemetry.start_span(
                        "task.attempt",
                        actor=self.name,
                        context=parent.child(f"{self.name}/task/{task_id}"),
                        task_id=task_id,
                        **({"tenant": tenant} if tenant is not None else {}),
                    )
                else:
                    record.root = self.telemetry.start_span(
                        "task",
                        actor=self.name,
                        context=task_context(self.name, task_id),
                        task_id=task_id,
                        **({"tenant": tenant} if tenant is not None else {}),
                    )
            self._tasks[task_id] = record
            self._dispatch(record)

    def _dispatch(self, record: _TaskRecord) -> None:
        """Send one tracked task to a live worker (lock held).

        With no live worker (e.g. every process just crashed) the record
        stays queued with a due retry; the supervisor re-dispatches as
        soon as capacity returns.  Quarantined workers are never
        candidates — fresh submits and fault replays alike wait for
        admitted capacity.
        """
        live = [w for w in self.workers if w.active and not w.retiring and not w.quarantined]
        if not live:
            record.worker_id = None
            record.next_retry_at = self.now()
            return
        self._rr = (self._rr + 1) % len(live)
        worker = live[self._rr]
        record.attempts += 1
        record.worker_id = worker.worker_id
        worker.outstanding.add(record.task_id)
        traceparent = self._trace_dispatch(record, worker)
        if worker.secured:
            item = (
                record.task_id,
                encrypt(_SECRET, pickle.dumps(record.payload)),
                True,
                traceparent,
            )
        else:
            item = (record.task_id, record.payload, False, traceparent)
        worker.task_queue.put(item)
        self._count_dispatch(worker)

    def _trace_dispatch(
        self,
        record: _TaskRecord,
        worker: ProcessWorkerHandle,
        outcome: Optional[str] = None,
    ) -> Optional[str]:
        """Chain one dispatch-attempt span; returns its traceparent.

        The first attempt parents under the task root; every later one
        (crash replay, rebalance steal) parents under the attempt it
        supersedes — the replayed execution lands *inside* the failed
        dispatch's subtree, which is what makes the fault story legible.
        """
        if record.root is None:
            return None
        prev = record.dispatch
        if prev is not None and outcome is not None:
            self.telemetry.end_span(prev, outcome=outcome)
        record.dispatch_seq += 1
        parent = prev.context if prev is not None else record.root.context
        seed = f"{self.name}/task/{record.task_id}/dispatch/{record.dispatch_seq}"
        record.dispatch = self.telemetry.start_span(
            "task.dispatch",
            actor=self.name,
            context=parent.child(seed),
            worker=worker.worker_id,
            attempt=record.attempts,
            secured=worker.secured,
        )
        return record.dispatch.context.traceparent()

    def _count_dispatch(self, worker: ProcessWorkerHandle) -> None:
        """Account one task entering ``worker``'s queue (lock held)."""
        worker.dispatched += 1
        if not self.telemetry.enabled:
            return
        metrics = self.telemetry.metrics
        metrics.counter(
            "repro_mc_dispatch_total", "tasks handed to a worker queue"
        ).labels(farm=self.name).inc()
        if not worker.secured:
            metrics.counter(
                "repro_mc_insecure_dispatch_total",
                "tasks handed to a worker over an unsecured channel",
            ).labels(farm=self.name).inc()

    def drain_results(self, count: int, timeout: float = 30.0) -> List[Any]:
        """Collect ``count`` results (order of completion, deduplicated)."""
        out = []
        deadline = time.monotonic() + timeout
        for _ in range(count):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"collected {len(out)}/{count} results")
            try:
                out.append(self.results.get(timeout=remaining))
            except queue.Empty:
                raise TimeoutError(f"collected {len(out)}/{count} results") from None
        return out

    # ------------------------------------------------------------------
    # result pump: the single reader of the result pipe (and the single
    # writer into the metrics registry)
    # ------------------------------------------------------------------
    def _pump_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                msg = self._result_q.get(timeout=0.1)
            except queue.Empty:
                continue
            except (EOFError, OSError):  # queue closed during shutdown
                return
            self._handle_message(msg)

    def _handle_message(self, msg: tuple) -> None:
        kind, worker_id = msg[0], msg[1]
        with self._lock:
            handle = self._find_worker(worker_id)
            now = self.now()
            if handle is not None:
                handle.last_seen = now
            if kind == "hb":
                self._note_worker_counter(handle, msg[2])
                return
            if kind == "bye":
                self._note_worker_counter(handle, msg[2])
                return
            if kind != "done":
                return
            _, _, task_id, result, completed, span_rec = msg
            self._note_worker_counter(handle, completed)
            if self.telemetry.enabled:
                # import the worker-side exec span even for a duplicate
                # ack: both executions of an at-least-once replay belong
                # in the task's one trace tree
                self.telemetry.import_span(span_rec)
            if task_id in self._completed_ids:
                # a replayed task also finished on its original worker:
                # at-least-once underneath, exactly-once outward
                self.duplicates += 1
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        "repro_process_duplicate_results_total",
                        "acks dropped because the task already completed",
                    ).labels(farm=self.name).inc()
                return
            self._completed_ids.add(task_id)
            record = self._tasks.pop(task_id, None)
            if handle is not None:
                handle.outstanding.discard(task_id)
            mark = max(now, self.departure_est._last_mark or 0.0)
            self.departure_est.mark(mark)
            self.completed += 1
            if record is not None:
                self._latencies.append((mark, mark - record.submitted_at))
                outcome = "error" if isinstance(result, Exception) else "ok"
                self.telemetry.end_span(record.dispatch, outcome=outcome)
                self.telemetry.end_span(record.root, outcome=outcome)
        self.results.put(result)

    def _note_worker_counter(self, handle: Optional[ProcessWorkerHandle], completed: int) -> None:
        """Fold a per-worker completion counter into the metrics registry."""
        if handle is None:
            return
        handle.reported_completed = max(handle.reported_completed, completed)
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge(
                "repro_process_worker_completed_tasks",
                "cumulative tasks completed, as reported by each worker",
            ).labels(farm=self.name, worker=handle.worker_id).set(
                handle.reported_completed
            )

    # ------------------------------------------------------------------
    # supervision: heartbeat liveness + replay of due retries
    # ------------------------------------------------------------------
    def _supervise_loop(self) -> None:
        while not self._shutdown.wait(self.supervise_period):
            try:
                self.supervise_once()
            except Exception:  # noqa: BLE001 - the supervisor must survive
                continue

    def supervise_once(self) -> List[int]:
        """One supervision pass (public so tests can drive it directly).

        Returns the ids of workers declared dead in this pass.
        """
        dead: List[int] = []
        with self._lock:
            now = self.now()
            for w in list(self.workers):
                if not w.active:
                    continue
                alive = w.process.is_alive()
                silent = (
                    w.last_seen > 0.0 or not alive
                ) and now - w.last_seen > self.heartbeat_timeout
                if alive and not silent:
                    continue
                if w.retiring and not alive and not w.outstanding:
                    w.active = False  # clean retirement, nothing to replay
                    continue
                self._declare_dead(w, now)
                dead.append(w.worker_id)
            self._dispatch_due_retries(now)
        return dead

    def _declare_dead(self, w: ProcessWorkerHandle, now: float) -> None:
        """Crash handling: replay every un-acked task of ``w`` (lock held)."""
        w.active = False
        self._gauge_quarantined()
        if w.process.is_alive():  # wedged, not dead: make it official
            try:
                w.process.kill()
            except Exception:  # noqa: BLE001
                pass
        self.crashes.append((now, w.worker_id))
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_process_worker_crashes_total",
                "workers declared dead by the supervisor",
            ).labels(farm=self.name).inc()
        for task_id in sorted(w.outstanding):
            record = self._tasks.get(task_id)
            if record is None:
                continue
            # the attempt in flight died with the worker; its span stays
            # referenced by the record so the replay parents under it
            self.telemetry.end_span(record.dispatch, outcome="crashed")
            if record.attempts >= self.max_attempts:
                del self._tasks[task_id]
                self.telemetry.end_span(record.root, outcome="dead-letter")
                self.dead_letters.append(
                    DeadLetter(
                        task_id=task_id,
                        payload=record.payload,
                        attempts=record.attempts,
                        last_worker_id=w.worker_id,
                    )
                )
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        "repro_process_dead_letter_total",
                        "tasks abandoned after exhausting the replay budget",
                    ).labels(farm=self.name).inc()
                continue
            delay = min(self.backoff_base * (2 ** (record.attempts - 1)), self.backoff_cap)
            record.worker_id = None
            record.next_retry_at = now + delay
            self.replays += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "repro_process_tasks_replayed_total",
                    "task dispatches replayed after a worker death",
                ).labels(farm=self.name).inc()
        w.outstanding.clear()

    def _dispatch_due_retries(self, now: float) -> None:
        """Re-dispatch replayed tasks whose backoff has elapsed (lock held)."""
        if not any(w.active and not w.retiring for w in self.workers):
            return
        due = [
            r
            for r in self._tasks.values()
            if r.worker_id is None and r.next_retry_at <= now
        ]
        for record in sorted(due, key=lambda r: r.task_id):
            self._dispatch(record)

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def snapshot(self) -> RuntimeFarmSnapshot:
        with self._lock:
            now = self.now()
            live = [w for w in self.workers if w.active and not w.quarantined]
            quarantined = sum(1 for w in self.workers if w.active and w.quarantined)
            lengths = tuple(len(w.outstanding) for w in live)
            _, var, _, _ = queue_length_stats(lengths)
            cutoff = now - self.rate_window
            while self._latencies and self._latencies[0][0] <= cutoff:
                self._latencies.popleft()
            mean_lat = (
                sum(lat for _, lat in self._latencies) / len(self._latencies)
                if self._latencies
                else 0.0
            )
            return RuntimeFarmSnapshot(
                time=now,
                arrival_rate=self.arrival_est.rate(now),
                departure_rate=self.departure_est.rate(now),
                num_workers=len(live),
                queue_lengths=lengths,
                queue_variance=var,
                completed=self.completed,
                pending=len(self._tasks),
                mean_latency=mean_lat,
                quarantined=quarantined,
            )

    @property
    def num_workers(self) -> int:
        """Serving capacity: live workers past the admission gate."""
        return sum(1 for w in self.workers if w.active and not w.quarantined)

    @property
    def quarantined_workers(self) -> int:
        return sum(1 for w in self.workers if w.active and w.quarantined)

    def _find_worker(self, worker_id: int) -> Optional[ProcessWorkerHandle]:
        for w in self.workers:
            if w.worker_id == worker_id:
                return w
        return None

    # ------------------------------------------------------------------
    # actuators
    # ------------------------------------------------------------------
    def add_worker(
        self, *, secured: bool = False, quarantined: bool = False
    ) -> ProcessWorkerHandle:
        with self._lock:
            # quarantined workers count against the limit: they hold a
            # real executor slot even while held out of dispatch
            if sum(1 for w in self.workers if w.active) >= self.max_workers:
                raise RuntimeError(f"worker limit {self.max_workers} reached")
            worker_id = self._next_id
            self._next_id += 1
            task_q = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    self.name,
                    self.fn,
                    task_q,
                    self._result_q,
                    self.heartbeat_period,
                ),
                name=f"{self.name}-w{worker_id}",
                daemon=True,
            )
            handle = ProcessWorkerHandle(
                worker_id=worker_id,
                process=proc,
                task_queue=task_q,
                secured=secured,
                quarantined=quarantined,
                last_seen=self.now(),
            )
            proc.start()
            self.workers.append(handle)
            self._gauge_quarantined()
            return handle

    def secure_worker(self, worker_id: int) -> bool:
        """Switch one worker's channel to encrypted payloads.

        The task pipe is parent-local, so as on the thread farm securing
        is flipping the emitter-side cipher on; the worker decrypts per
        item via the ``enc`` flag it already honours.
        """
        with self._lock:
            w = self._find_worker(worker_id)
            if w is None or not w.active:
                return False
            w.secured = True
            return True

    def admit_worker(self, worker_id: int) -> bool:
        """Lift the admission gate: the worker joins the dispatch set."""
        with self._lock:
            w = self._find_worker(worker_id)
            if w is None or not w.active:
                return False
            w.quarantined = False
            self._gauge_quarantined()
            # capacity just appeared: anything parked for retry can go now
            self._dispatch_due_retries(self.now())
            return True

    def _gauge_quarantined(self) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge(
                "repro_mc_quarantined_workers", "workers held at the admission gate"
            ).labels(farm=self.name).set(
                sum(1 for w in self.workers if w.active and w.quarantined)
            )

    def remove_worker(self) -> Optional[ProcessWorkerHandle]:
        """Retire the newest worker gracefully.

        The poison sentinel queues *behind* any tasks already dispatched
        to the victim, so it drains its backlog before exiting; the
        supervisor replays anything still un-acked if it dies instead.
        """
        with self._lock:
            # a retiring worker is already on its way out: it neither
            # counts toward the floor nor may be "removed" a second time;
            # quarantined workers are not serving capacity, so they are
            # neither victims nor part of the floor
            live = [w for w in self.workers if w.active and not w.retiring and not w.quarantined]
            if len(live) <= 1:
                return None
            victim = live[-1]
            victim.retiring = True
            victim.task_queue.put(_POISON)
            return victim

    def balance_load(self) -> int:
        """Steal queued (not yet started) tasks from long queues to short.

        The parent is a legitimate extra consumer of a worker's task
        queue, so stealing is just ``get_nowait`` + re-dispatch; sizes
        are approximate under concurrency, as on every real runtime.
        """
        moved = 0
        with self._lock:
            live = [
                w for w in self.workers if w.active and not w.retiring and not w.quarantined
            ]
            if len(live) < 2:
                return 0
            for _ in range(1000):
                live.sort(key=lambda w: len(w.outstanding))
                shortest, longest = live[0], live[-1]
                if len(longest.outstanding) - len(shortest.outstanding) <= 1:
                    break
                try:
                    item = longest.task_queue.get_nowait()
                except queue.Empty:
                    break
                if item == _POISON:
                    longest.task_queue.put(item)
                    break
                task_id = item[0]
                longest.outstanding.discard(task_id)
                shortest.outstanding.add(task_id)
                record = self._tasks.get(task_id)
                if record is not None:
                    record.worker_id = shortest.worker_id
                    if record.root is not None:
                        # re-stamp the envelope so the exec span parents
                        # under the steal, not the superseded dispatch
                        tp = self._trace_dispatch(
                            record, shortest, outcome="rebalanced"
                        )
                        item = (item[0], item[1], item[2], tp)
                shortest.task_queue.put(item)
                self._count_dispatch(shortest)
                moved += 1
        return moved

    def secure_all(self) -> None:
        with self._lock:
            for w in self.workers:
                w.secured = True

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def inject_crash(self, worker_id: Optional[int] = None) -> Optional[int]:
        """SIGKILL one live worker process (the newest, unless given).

        Returns the killed worker id, or ``None`` if no worker was
        killable.  Detection, replay and capacity recovery then proceed
        through the ordinary supervision/rule machinery — nothing is
        short-circuited for the test.
        """
        with self._lock:
            if worker_id is None:
                # default victims are serving workers: killing a
                # quarantined one proves nothing about fault recovery
                live = [
                    w
                    for w in self.workers
                    if w.active and not w.retiring and not w.quarantined
                ]
                if not live:
                    return None
                victim = live[-1]
            else:
                victim = self._find_worker(worker_id)
                if victim is None or not victim.active:
                    return None
            pid = victim.pid
        if pid is None:
            return None
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return None
        return victim.worker_id

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Simulate the coordinator process dying (SIGKILL semantics).

        The children are this coordinator's process *group* in spirit:
        a real coordinator SIGKILL orphans them mid-task and they die
        with (or are reaped right after) their parent, so the simulation
        SIGKILLs them outright — no poison, no graceful join.  Open task
        state ends as ``coordinator-crashed`` spans and nothing is
        flushed — a dead process flushes nothing.
        """
        self._shutdown.set()  # stops the pump and supervisor loops
        with self._lock:
            workers = list(self.workers)
            for w in workers:
                w.active = False
            for record in self._tasks.values():
                self.telemetry.end_span(record.dispatch, outcome="coordinator-crashed")
                self.telemetry.end_span(record.root, outcome="coordinator-crashed")
            self._tasks.clear()
        for w in workers:
            if w.process.is_alive():
                try:
                    w.process.kill()
                except Exception:  # noqa: BLE001
                    pass
        for w in workers:
            w.process.join(1.0)
        for t in (self._pump, self._supervisor):
            t.join(1.0)
        for w in workers:
            w.task_queue.close()
            w.task_queue.cancel_join_thread()
        self._result_q.close()
        self._result_q.cancel_join_thread()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop supervision, then every worker (pending tasks abandoned)."""
        self._shutdown.set()
        with self._lock:
            workers = list(self.workers)
            for w in workers:
                w.active = False
        for w in workers:
            try:
                w.task_queue.put_nowait(_POISON)
            except Exception:  # noqa: BLE001 - queue may already be closed
                pass
        deadline = time.monotonic() + timeout
        for w in workers:
            w.process.join(max(0.0, deadline - time.monotonic()))
            if w.process.is_alive():
                w.process.kill()
                w.process.join(1.0)
        for t in (self._pump, self._supervisor):
            t.join(1.0)
        for w in workers:
            w.task_queue.close()
            w.task_queue.cancel_join_thread()
        self._result_q.close()
        self._result_q.cancel_join_thread()
        # abandoned tasks must not leak open spans into the export
        if self.telemetry.enabled:
            self.telemetry.flush()
