"""Live multi-concern coordination: the GM over a real :class:`FarmBackend`.

Section 3.2's coordination design — multiple per-concern autonomic
managers plus a general super-AM running the two-phase intent protocol —
exists in the simulator as :class:`repro.core.multiconcern.GeneralManager`.
This module is the same protocol executed against *wall-clock* substrates:
the thread, process and dist farms, all behind the
:class:`~repro.runtime.backend.FarmBackend` admission gate.

The moving parts:

* :class:`WorkerPlacement` maps live farm workers onto the nodes of a
  :class:`~repro.sim.resources.ResourceManager`, so the domain/trust
  model (which node sits on untrusted ground) drives live securing
  decisions exactly as it drives simulated ones.
* :class:`LiveGeneralManager` coordinates a performance
  :class:`~repro.runtime.controller.FarmController` and a live security
  manager (:class:`~repro.security.manager.LiveSecurityManager`) over
  one farm.  A grow intent runs plan → review → commit:

  1. **plan** — reserve nodes from the placement pool;
  2. **review** — every registered concern manager, in priority order
     (boolean concerns such as security outrank quantitative ones), may
     *amend* the plan (``require_secure``) or *veto* it — the shared
     :func:`repro.core.multiconcern.review_plan` phase, so sim and live
     review semantics cannot drift;
  3. **commit** — each worker is instantiated **quarantined** (the
     backend's admission gate guarantees no task is dispatched to it),
     its channel is secured where the plan demands it (a real wire
     handshake on the dist farm), and only then is it admitted into the
     dispatch set.

  The ``NAIVE`` mode is the ablation baseline: workers are instantiated
  immediately, unsecured and admitted — the leak window §3.2 warns
  about, measurable live as a non-zero
  ``repro_mc_insecure_dispatch_total``.

Telemetry: one ``mc.intent`` span per review round and one ``mc.commit``
span per commit, with ``mc.quarantine``/``mc.secured``/``mc.admit``
events per worker, plus ``repro_mc_*`` counters — the observable account
of "no task ever reached an unsecured worker".
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.multiconcern import CoordinationMode, IntentRecord, review_plan
from ..gcm.abc_controller import PlannedReconfiguration
from ..obs.telemetry import NOOP, Telemetry
from ..rules.beans import ManagerOperation
from ..sim.resources import Node, NodePredicate, ResourceManager, any_node

__all__ = ["WorkerPlacement", "LiveGeneralManager"]


class WorkerPlacement:
    """Binds live farm worker ids to resource-manager nodes.

    The farm knows workers; the security policy knows nodes and domains.
    This is the joint between them: the GM reserves nodes here before
    growing, binds each new worker id to its node, and the security
    manager consults the binding to decide which live channels cross
    untrusted ground.
    """

    def __init__(self, resources: ResourceManager) -> None:
        self.resources = resources
        self._bindings: Dict[int, Node] = {}
        self._lock = threading.Lock()

    def reserve(
        self, count: int, predicate: NodePredicate = any_node
    ) -> Optional[List[Node]]:
        """Allocate ``count`` nodes, or None if the pool cannot satisfy it."""
        nodes = self.resources.try_recruit(count, predicate)
        return nodes or None

    def release(self, nodes: List[Node]) -> None:
        self.resources.release_all(nodes)

    def bind(self, worker_id: int, node: Node) -> None:
        with self._lock:
            self._bindings[worker_id] = node

    def unbind(self, worker_id: int) -> Optional[Node]:
        """Drop a binding (worker retired/dead) and free its node."""
        with self._lock:
            node = self._bindings.pop(worker_id, None)
        if node is not None:
            self.resources.release(node)
        return node

    def node_of(self, worker_id: int) -> Optional[Node]:
        with self._lock:
            return self._bindings.get(worker_id)

    def bound(self) -> Dict[int, Node]:
        """A snapshot of the worker → node map."""
        with self._lock:
            return dict(self._bindings)


class LiveGeneralManager:
    """The super-AM coordinating concern managers over one live farm.

    Counterpart of the simulated
    :class:`~repro.core.multiconcern.GeneralManager`; registration and
    review semantics are identical (boolean concerns default to priority
    10, reviews run in priority order, first veto wins), but commit is
    the live three-step: quarantine → secure → admit through the
    backend's admission gate.
    """

    #: concerns that are boolean and therefore outrank quantitative ones
    BOOLEAN_CONCERNS = frozenset({"security"})

    def __init__(
        self,
        farm: Any,
        placement: WorkerPlacement,
        *,
        mode: CoordinationMode = CoordinationMode.TWO_PHASE,
        telemetry: Optional[Telemetry] = None,
        name: str = "GM_live",
        journal: Optional[Any] = None,
    ) -> None:
        self.farm = farm
        self.placement = placement
        self.mode = mode
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.name = name
        #: optional DispatchJournal: every intent round that reaches an
        #: outcome is journaled, so a supervisor replay knows what the
        #: dead GM had committed (journal↔audit unification)
        self.journal = journal
        self._managers: List[Tuple[int, Any]] = []
        self.intents: List[IntentRecord] = []
        #: one intent round at a time: concurrent controllers must not
        #: interleave their reserve/review/commit sequences
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, manager: Any, *, priority: Optional[int] = None) -> None:
        """Attach a concern manager; boolean concerns default to priority 10.

        Registration installs this GM as the manager's coordinator, so
        its grow actuations route through :meth:`execute_intent`.
        """
        if priority is None:
            concern = getattr(manager, "concern", "")
            priority = 10 if concern in self.BOOLEAN_CONCERNS else 0
        self._managers.append((priority, manager))
        self._managers.sort(key=lambda t: -t[0])
        manager.coordinator = self

    @property
    def managers(self) -> List[Any]:
        """Registered managers in review (priority) order."""
        return [m for _, m in self._managers]

    # ------------------------------------------------------------------
    # the intent protocol, live
    # ------------------------------------------------------------------
    def execute_intent(
        self, originator: Any, op: ManagerOperation, data: Any = None
    ) -> bool:
        """Run one grow intent through plan → review → commit.

        Only ``ADD_EXECUTOR`` has a plan/commit split; anything else is
        refused (the caller falls back to its local actuator path).
        Returns True iff at least one worker was admitted.
        """
        if op is not ManagerOperation.ADD_EXECUTOR:
            return False
        count = int(data.get("count", 1)) if isinstance(data, Mapping) else 1
        tel = self.telemetry
        originator_name = getattr(originator, "name", str(originator))
        with self._lock:
            with tel.span(
                "mc.intent",
                actor=self.name,
                originator=originator_name,
                operation=op.value,
                mode=self.mode.value,
            ) as intent_span:
                nodes = self.placement.reserve(count)
                tel.event("intent.plan", count=count, ok=nodes is not None)
                if nodes is None:
                    intent_span.set_attribute("outcome", "no-plan")
                    self._record(originator_name, op, "no-plan")
                    return False
                plan = PlannedReconfiguration(nodes)
                amendments = 0
                reviewers: Tuple[str, ...] = ()
                if self.mode is CoordinationMode.TWO_PHASE:
                    ok, amendments, reviewers = review_plan(
                        originator, plan, self.managers, telemetry=tel
                    )
                    if not ok:
                        plan.aborted = True
                        self.placement.release(nodes)
                        intent_span.set_attribute("outcome", "vetoed")
                        self._record(
                            originator_name,
                            op,
                            "vetoed",
                            amendments=amendments,
                            reviewers=reviewers,
                        )
                        return False
                intent_span.set_attribute("outcome", "committed")
            with tel.span(
                "mc.commit",
                actor=self.name,
                originator=originator_name,
                nodes=[n.name for n in plan.nodes],
            ) as commit_span:
                admitted, failures = self._commit(plan)
                commit_span.set_attribute("admitted", admitted)
                commit_span.set_attribute("failures", failures)
            plan.committed = True
            if failures == 0:
                outcome = "committed"
            elif admitted:
                outcome = "partial"
            else:
                outcome = "failed"
            self._record(
                originator_name,
                op,
                outcome,
                amendments=amendments,
                reviewers=reviewers,
            )
            if amendments and tel.enabled:
                tel.metrics.counter(
                    "repro_mc_amendments_total", "plan amendments applied by reviewers"
                ).labels(gm=self.name).inc(amendments)
            return admitted > 0

    def _commit(self, plan: PlannedReconfiguration) -> Tuple[int, int]:
        """Phase two: instantiate each planned worker through the gate.

        Two-phase order per node: ``add_worker(quarantined=True)`` (the
        backend dispatcher cannot touch it), then — where the plan was
        amended — ``secure_worker`` (a real handshake on the dist farm),
        then ``admit_worker``.  A worker whose securing fails is *left
        quarantined*: it holds a slot but can never receive a task,
        which is the safe failure mode.

        Returns ``(admitted, failures)``.
        """
        tel = self.telemetry
        naive = self.mode is CoordinationMode.NAIVE
        admitted = 0
        failures = 0
        for node in plan.nodes:
            needs_secure = bool(plan.secured.get(node.name))
            kwargs: Dict[str, Any] = {}
            if not naive:
                kwargs["quarantined"] = True
                if needs_secure and getattr(self.farm, "SUPPORTS_REQUIRE_SECURE", False):
                    # double-ended gate: the dist worker itself bounces
                    # any task frame that beats the handshake
                    kwargs["require_secure"] = True
            try:
                handle = self.farm.add_worker(**kwargs)
            except RuntimeError:
                # substrate capacity exhausted: hand the node back
                self.placement.release([node])
                failures += 1
                tel.event("mc.no_capacity", node=node.name)
                continue
            worker_id = handle.worker_id
            self.placement.bind(worker_id, node)
            if naive:
                # phase-less instantiation: live and dispatchable right
                # away, unsecured — the §3.2 leak window, on purpose
                admitted += 1
                tel.event("mc.admit", worker=worker_id, node=node.name, naive=True)
                continue
            tel.event("mc.quarantine", worker=worker_id, node=node.name)
            if needs_secure:
                if not self.farm.secure_worker(worker_id):
                    failures += 1
                    tel.event("mc.secure_failed", worker=worker_id, node=node.name)
                    if tel.enabled:
                        tel.metrics.counter(
                            "repro_mc_secure_failures_total",
                            "commit steps aborted by a failed channel handshake",
                        ).labels(gm=self.name).inc()
                    continue
                tel.event("mc.secured", worker=worker_id, node=node.name)
            if self.farm.admit_worker(worker_id):
                admitted += 1
                tel.event("mc.admit", worker=worker_id, node=node.name)
                if tel.enabled:
                    tel.metrics.counter(
                        "repro_mc_admitted_workers_total",
                        "workers committed through the admission gate",
                    ).labels(gm=self.name).inc()
            else:
                failures += 1
        return admitted, failures

    # ------------------------------------------------------------------
    # audit
    # ------------------------------------------------------------------
    def _record(
        self,
        originator: str,
        op: ManagerOperation,
        outcome: str,
        *,
        amendments: int = 0,
        reviewers: Tuple[str, ...] = (),
    ) -> None:
        self.intents.append(
            IntentRecord(
                time=self.farm.now(),
                originator=originator,
                operation=op.value,
                outcome=outcome,
                amendments=amendments,
                reviewers=reviewers,
            )
        )
        if self.journal is not None:
            self.journal.append(
                {
                    "ev": "intent",
                    "originator": originator,
                    "operation": op.value,
                    "outcome": outcome,
                }
            )
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "repro_mc_intent_rounds_total", "intent rounds through the GM, by outcome"
            ).labels(gm=self.name, outcome=outcome).inc()

    def outcomes(self) -> Dict[str, int]:
        """Intent outcome histogram (committed/vetoed/no-plan/...)."""
        out: Dict[str, int] = {}
        for rec in self.intents:
            out[rec.outcome] = out.get(rec.outcome, 0) + 1
        return out
