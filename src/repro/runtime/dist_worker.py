"""DistFarm worker process: connect, execute, ack — over plain TCP.

Runnable directly, which is the whole point of the distributed backend::

    python -m repro.runtime.dist_worker \
        --host 127.0.0.1 --port 40123 --fn mypkg.tasks:render

A worker started this way on *any* host attaches to a listening
:class:`~repro.runtime.dist_farm.DistFarm` coordinator (``--worker-id``
defaults to −1, "assign me an id"), receives task frames, executes the
named function and acks each completion.  The coordinator spawns local
workers through exactly this entry point, so a locally spawned and a
remotely attached worker are indistinguishable on the wire.

The wire is protocol v4 (:mod:`.dist_proto`): binary frames, a payload
codec negotiated at ``hello`` (offer restricted with ``--codec``), and
multi-task ``task_batch`` frames executed in arrival order with results
accumulated and acked in ``result_batch`` frames — flushed whenever the
input queue drains or enough results pile up, so a busy worker amortises
acks without ever sitting on a finished result while idle.  Setting
``REPRO_FORCE_PROTO=3`` in the environment pins the worker to the v3
dialect — JSON frames, one task/result per frame, no codec offer —
which is how CI proves a v4 coordinator still serves v3-only peers.

Structure (one asyncio loop, three coroutines):

* **reader** — drains frames into an in-order queue; EOF means the
  coordinator is gone.  By default the worker exits immediately (nobody
  left to ack to; in-flight work is replayed anyway), but with
  ``--reconnect-attempts N`` it instead redials with capped backoff and
  ``reattach``-es to whatever coordinator — typically a promoted
  standby — rebinds the port, refusing task frames from any session
  announcing an epoch older than the newest it has served.
* **executor** — pulls tasks from the queue and runs the (blocking)
  task function on a single-thread executor, so a long CPU/sleep task
  never stalls the loop; a ``poison`` frame queues *behind* earlier
  tasks, which is what makes coordinator-driven retirement graceful.
* **heartbeat** — beats every ``--heartbeat-period`` independently of
  task execution, mirroring the process farm's liveness design: only
  real death (or a wedged interpreter) silences a worker.

Connection establishment retries with capped exponential backoff
(``--connect-attempts`` / ``--connect-backoff``), so workers can be
launched *before* the coordinator finishes binding its port.
"""

from __future__ import annotations

import argparse
import asyncio
import concurrent.futures
import importlib
import os
import sys
import time
from typing import Any, Callable, List, Optional, Tuple

from ..obs.propagation import TraceContext, make_span_record
from .dist_proto import (
    PROTOCOL_VERSION,
    ProtocolError,
    available_codecs,
    decode_payload,
    encode_frame,
    encode_frame_v4,
    prove_challenge,
    read_frame_ex,
)

__all__ = ["resolve_fn", "run_worker", "main"]

#: flush accumulated results once this many pile up even if the input
#: queue never drains — bounds ack latency under a sustained stream
RESULT_FLUSH = 32


def resolve_fn(spec: str) -> Callable[[Any], Any]:
    """Import ``module:qualname`` and return the callable it names."""
    module_name, sep, qualname = spec.partition(":")
    if not sep or not module_name or not qualname:
        raise ValueError(f"fn spec must look like 'module:qualname', got {spec!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"{spec} resolved to non-callable {obj!r}")
    return obj


async def _connect(
    host: str, port: int, attempts: int, backoff: float, backoff_cap: float
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open the coordinator connection, retrying with capped backoff."""
    delay = backoff
    for attempt in range(attempts):
        try:
            return await asyncio.open_connection(host, port)
        except OSError:
            if attempt == attempts - 1:
                raise
            await asyncio.sleep(delay)
            delay = min(delay * 2.0, backoff_cap)
    raise OSError("unreachable")  # pragma: no cover - loop always returns/raises


async def run_worker(
    host: str,
    port: int,
    fn: Callable[[Any], Any],
    *,
    worker_id: int = -1,
    heartbeat_period: float = 0.1,
    connect_attempts: int = 40,
    connect_backoff: float = 0.05,
    connect_backoff_cap: float = 2.0,
    require_secure: bool = False,
    reconnect_attempts: int = 0,
    codec: str = "auto",
) -> int:
    """Run one worker until poisoned (returns 0) or orphaned.

    ``codec`` restricts the codec offer in the ``hello`` frame
    (``"auto"``: offer everything this interpreter can speak); the
    coordinator picks the session codec and announces it in ``welcome``.

    With ``require_secure`` the worker enforces the admission gate on
    its *own* side of the wire: any task frame arriving before the
    ``secure`` handshake completes is bounced with a ``refused`` frame,
    never executed — so even a hand-rolled client speaking the raw
    protocol cannot push work onto an unsecured channel.

    With ``reconnect_attempts > 0`` the worker *survives* losing its
    coordinator: on EOF it drops in-flight state (the coordinator's
    journal replays those tasks anyway), redials with capped exponential
    backoff and announces itself with a ``reattach`` frame carrying the
    id it was already assigned.  A promoted standby answers ``takeover``
    and the worker keeps serving under the new epoch.  The highest epoch
    ever seen is sticky: a session announcing a *lower* epoch is a stale
    predecessor, and every task frame it sends — single or batch — is
    bounced with a ``refused``/``stale epoch`` frame rather than
    executed; at most one coordinator incarnation can get work out of
    this worker.

    With ``reconnect_attempts <= 0`` (the default and the pre-v3
    behaviour) EOF hard-exits the process: there is nobody to ack to,
    and the hard exit guarantees no non-daemon executor thread keeps an
    orphan alive for the tail of a long task.
    """
    loop = asyncio.get_running_loop()
    pool = concurrent.futures.ThreadPoolExecutor(
        max_workers=1, thread_name_prefix=f"dworker-{worker_id}"
    )
    completed = 0
    max_epoch = -1  # highest coordinator epoch this worker has served
    attached = False  # whether a coordinator ever assigned us an id
    # REPRO_FORCE_PROTO=3 emulates a genuine v3-release worker: v3
    # framing everywhere, proto 3 in the hello, no codec offer, one
    # result per frame — the wire-compat CI leg runs the whole
    # conformance story this way against a v4 coordinator
    force_v3 = os.environ.get("REPRO_FORCE_PROTO") == "3"
    my_proto = 3 if force_v3 else PROTOCOL_VERSION
    offered = available_codecs() if codec == "auto" else (codec,)

    async def session() -> str:
        """One coordinator attachment; returns how it ended."""
        nonlocal worker_id, completed, max_epoch, attached
        reader, writer = await _connect(
            host,
            port,
            reconnect_attempts if attached else connect_attempts,
            connect_backoff,
            connect_backoff_cap,
        )
        greeting = {
            "type": "reattach" if attached else "hello",
            "worker_id": worker_id,
            "proto": my_proto,
        }
        if not force_v3:
            greeting["codecs"] = list(offered)
        if attached:
            greeting["completed"] = completed
        writer.write(encode_frame(greeting) if force_v3 else encode_frame_v4(greeting))
        try:
            welcome, _ = await read_frame_ex(reader, allowed=("json",))
        except ProtocolError:
            writer.close()
            return "bad-handshake"
        if welcome is not None and welcome.get("type") == "error":
            # the coordinator refused us (e.g. protocol-version
            # mismatch, no acceptable codec): surface its diagnosis
            # instead of dying silently
            print(
                f"coordinator refused worker: {welcome.get('error', 'unknown error')}",
                file=sys.stderr,
            )
            writer.close()
            return "refused"
        if welcome is None or welcome.get("type") not in ("welcome", "takeover"):
            writer.close()
            return "bad-handshake"
        coord_proto = welcome.get("proto", my_proto)  # absent = legacy peer
        if coord_proto != my_proto:
            print(
                f"protocol version mismatch: this worker speaks version "
                f"{my_proto}, the coordinator announced {coord_proto}",
                file=sys.stderr,
            )
            writer.close()
            return "bad-handshake"
        session_codec = str(welcome.get("codec", "json"))
        if session_codec != "json" and session_codec not in offered:
            print(
                f"coordinator picked codec {session_codec!r}, which this "
                f"worker never offered (offered: {', '.join(offered)})",
                file=sys.stderr,
            )
            writer.close()
            return "bad-handshake"
        worker_id = int(welcome.get("worker_id", worker_id))
        attached = True
        epoch = int(welcome.get("epoch", 0))
        stale = max_epoch >= 0 and epoch < max_epoch
        max_epoch = max(max_epoch, epoch)

        # queue items: (wire, [task entries]) batches, or None (poison)
        tasks: "asyncio.Queue[Optional[Tuple[int, List[dict]]]]" = asyncio.Queue()
        secured = False
        out_buf: List[dict] = []

        def encode_out(message: dict) -> bytes:
            if force_v3:
                return encode_frame(message)
            if message.get("type") in ("result", "result_batch"):
                return encode_frame_v4(message, codec=session_codec)
            return encode_frame_v4(message)

        def send(message: dict) -> None:
            try:
                writer.write(encode_out(message))
            except Exception:  # noqa: BLE001 - connection died under us
                pass

        def flush_results() -> None:
            """Ship accumulated result entries, batched when possible.

            Encoding is optimistic: if a batch refuses the session codec
            (one unserializable value), fall back to per-entry frames so
            only the offending task degrades to an error result.
            """
            if not out_buf:
                return
            entries = out_buf[:]
            out_buf.clear()
            if not force_v3 and len(entries) > 1:
                try:
                    writer.write(
                        encode_out(
                            {
                                "type": "result_batch",
                                "results": entries,
                                "completed": completed,
                            }
                        )
                    )
                    return
                except (ConnectionError, OSError):
                    return
                except Exception:  # noqa: BLE001 - a value refused the codec
                    pass
            for entry in entries:
                message = {"type": "result", **entry, "completed": completed}
                try:
                    data = encode_out(message)
                except Exception as exc:  # noqa: BLE001 - unserializable value
                    fallback = {
                        "type": "result",
                        "task_id": entry.get("task_id"),
                        "error": f"{type(exc).__name__}: {exc}",
                        "completed": completed,
                    }
                    if "span" in entry:
                        fallback["span"] = entry["span"]
                    data = encode_out(fallback)
                try:
                    writer.write(data)
                except Exception:  # noqa: BLE001
                    return

        def refuse(items: List[dict], reason: str) -> None:
            if len(items) == 1:
                send(
                    {
                        "type": "refused",
                        "task_id": items[0].get("task_id"),
                        "reason": reason,
                    }
                )
            else:
                send(
                    {
                        "type": "refused",
                        "task_ids": [it.get("task_id") for it in items],
                        "reason": reason,
                    }
                )

        async def reader_loop() -> str:
            nonlocal secured
            while True:
                try:
                    frame, wire = await read_frame_ex(
                        reader, allowed=("json", session_codec)
                    )
                except ProtocolError:
                    # a malformed/torn frame means the coordinator-side
                    # stream is garbage; treat it exactly like EOF
                    frame = None
                    wire = 3
                if frame is None:
                    # the coordinator vanished mid-connection
                    if reconnect_attempts <= 0:
                        os._exit(1)
                    return "eof"
                kind = frame.get("type")
                if kind in ("task", "task_batch"):
                    items = frame["tasks"] if kind == "task_batch" else [frame]
                    if stale:
                        # this session belongs to a superseded
                        # coordinator incarnation: never execute its
                        # work — single task or whole batch — tell it why
                        refuse(items, "stale epoch")
                        continue
                    if require_secure and not secured:
                        # the worker-side half of the admission gate:
                        # bounce, never execute, until the channel
                        # handshake is done
                        refuse(items, "security handshake required")
                        continue
                    await tasks.put((wire, items))
                elif kind == "secure":
                    send(
                        {
                            "type": "secured",
                            "proof": prove_challenge(str(frame.get("challenge", ""))),
                        }
                    )
                    secured = True
                elif kind == "poison":
                    await tasks.put(None)
                    return "poison"

        def run_entry(wire: int, task_frame: dict) -> dict:
            """Execute one task entry (on the pool thread); the result.

            The coordinator's dispatch span rides in as a traceparent
            (``tp`` inside batch entries); this execution is recorded
            as a child span and shipped back on the result entry, where
            it is re-parented into the coordinator's trace store
            (timestamps: epoch seconds, the same base the coordinator's
            WallClock uses).
            """
            task_id = task_frame.get("task_id")
            parent_ctx = TraceContext.from_traceparent(
                task_frame.get("traceparent") or task_frame.get("tp")
            )
            started = time.time()
            try:
                if wire == 3:
                    # v3 dialect: secured payloads are individually
                    # encrypted and flagged; on v4 the whole frame body
                    # was already decrypted by the frame reader
                    payload = decode_payload(
                        task_frame["payload"], secured=task_frame.get("enc", False)
                    )
                else:
                    payload = task_frame["payload"]
                entry = {"task_id": task_id, "value": fn(payload)}
            except Exception as exc:  # noqa: BLE001 - surfaced as an error result
                entry = {"task_id": task_id, "error": f"{type(exc).__name__}: {exc}"}
            if parent_ctx is not None:
                # the parent span id is unique per dispatch attempt,
                # so the derived exec span id is too — replays never
                # collide
                ctx = parent_ctx.child(f"exec:{worker_id}:{parent_ctx.span_id}")
                entry["span"] = make_span_record(
                    ctx,
                    "task.exec",
                    actor=f"dworker-{worker_id}",
                    start=started,
                    end=time.time(),
                    attributes={
                        "worker": worker_id,
                        "pid": os.getpid(),
                        "outcome": "error" if "error" in entry else "ok",
                    },
                )
            return entry

        def run_entries(wire: int, items: List[dict]) -> List[dict]:
            return [run_entry(wire, task_frame) for task_frame in items]

        async def executor_loop() -> None:
            nonlocal completed
            while True:
                item = await tasks.get()
                if item is None:
                    flush_results()
                    send({"type": "bye", "completed": completed})
                    await writer.drain()
                    return
                wire, items = item
                # one executor hop for the whole batch: the per-task
                # submit/wakeup round trip through the pool was the
                # dominant worker-side cost for cheap tasks, and the
                # event loop stays free for heartbeats either way
                entries = await loop.run_in_executor(pool, run_entries, wire, items)
                completed += len(entries)
                out_buf.extend(entries)
                if len(out_buf) >= RESULT_FLUSH or tasks.empty():
                    # idle (or the queue drained): never sit on results
                    flush_results()

        async def heartbeat_loop() -> None:
            while True:
                await asyncio.sleep(heartbeat_period)
                send({"type": "hb", "completed": completed})

        t_reader = asyncio.ensure_future(reader_loop())
        t_exec = asyncio.ensure_future(executor_loop())
        t_hb = asyncio.ensure_future(heartbeat_loop())
        done, _ = await asyncio.wait(
            {t_reader, t_exec}, return_when=asyncio.FIRST_COMPLETED
        )
        outcome = "eof"
        try:
            if t_reader in done:
                outcome = t_reader.result()
                if outcome == "poison":
                    # let already-queued tasks finish, then bye
                    await t_exec
            else:
                # executor finished first: only happens after poison
                outcome = "poison"
        finally:
            for task in (t_reader, t_exec, t_hb):
                task.cancel()
            await asyncio.gather(t_reader, t_exec, t_hb, return_exceptions=True)
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass
        return outcome

    try:
        while True:
            try:
                outcome = await session()
            except OSError:
                # redial exhausted: the coordinator never came back
                return 1
            if outcome == "poison":
                return 0
            if outcome in ("refused", "bad-handshake"):
                return 1
            # "eof" with reconnect enabled: in-flight frames are dropped
            # (the journal replays them) and we redial the same port —
            # the standby coordinator rebinds it on promotion
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.dist_worker",
        description="attach one task-farm worker to a DistFarm coordinator",
    )
    parser.add_argument("--host", required=True, help="coordinator host")
    parser.add_argument("--port", type=int, required=True, help="coordinator port")
    parser.add_argument(
        "--fn", required=True, metavar="MODULE:QUALNAME",
        help="importable task function this worker executes",
    )
    parser.add_argument(
        "--worker-id", type=int, default=-1,
        help="id assigned by a spawning coordinator (-1: ask for one)",
    )
    parser.add_argument("--heartbeat-period", type=float, default=0.1)
    parser.add_argument("--connect-attempts", type=int, default=40)
    parser.add_argument("--connect-backoff", type=float, default=0.05)
    parser.add_argument(
        "--codec", default="auto", choices=("auto", *available_codecs()),
        help="payload codec(s) to offer at hello (auto: everything this "
        "interpreter can speak; the coordinator picks the session codec)",
    )
    parser.add_argument(
        "--require-secure", action="store_true",
        help="refuse task frames until the secure-channel handshake completes",
    )
    parser.add_argument(
        "--reconnect-attempts", type=int, default=0,
        help="redials after losing the coordinator (0: exit on EOF, the "
        "pre-v3 behaviour); each redial backs off exponentially, capped",
    )
    args = parser.parse_args(argv)

    fn = resolve_fn(args.fn)
    try:
        return asyncio.run(
            run_worker(
                args.host,
                args.port,
                fn,
                worker_id=args.worker_id,
                heartbeat_period=args.heartbeat_period,
                connect_attempts=args.connect_attempts,
                connect_backoff=args.connect_backoff,
                require_secure=args.require_secure,
                reconnect_attempts=args.reconnect_attempts,
                codec=args.codec,
            )
        )
    except (OSError, KeyboardInterrupt):
        return 1


if __name__ == "__main__":
    sys.exit(main())
