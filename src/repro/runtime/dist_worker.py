"""DistFarm worker process: connect, execute, ack — over plain TCP.

Runnable directly, which is the whole point of the distributed backend::

    python -m repro.runtime.dist_worker \
        --host 127.0.0.1 --port 40123 --fn mypkg.tasks:render

A worker started this way on *any* host attaches to a listening
:class:`~repro.runtime.dist_farm.DistFarm` coordinator (``--worker-id``
defaults to −1, "assign me an id"), receives task frames, executes the
named function and acks each completion.  The coordinator spawns local
workers through exactly this entry point, so a locally spawned and a
remotely attached worker are indistinguishable on the wire.

Structure (one asyncio loop, three coroutines):

* **reader** — drains frames into an in-order queue; EOF means the
  coordinator is gone.  By default the worker exits immediately (nobody
  left to ack to; in-flight work is replayed anyway), but with
  ``--reconnect-attempts N`` it instead redials with capped backoff and
  ``reattach``-es to whatever coordinator — typically a promoted
  standby — rebinds the port, refusing task frames from any session
  announcing an epoch older than the newest it has served.
* **executor** — pulls tasks from the queue and runs the (blocking)
  task function on a single-thread executor, so a long CPU/sleep task
  never stalls the loop; a ``poison`` frame queues *behind* earlier
  tasks, which is what makes coordinator-driven retirement graceful.
* **heartbeat** — beats every ``--heartbeat-period`` independently of
  task execution, mirroring the process farm's liveness design: only
  real death (or a wedged interpreter) silences a worker.

Connection establishment retries with capped exponential backoff
(``--connect-attempts`` / ``--connect-backoff``), so workers can be
launched *before* the coordinator finishes binding its port.
"""

from __future__ import annotations

import argparse
import asyncio
import concurrent.futures
import importlib
import json
import os
import sys
import time
from typing import Any, Callable, Optional, Tuple

from ..obs.propagation import TraceContext, make_span_record
from .dist_proto import (
    PROTOCOL_VERSION,
    decode_payload,
    encode_frame,
    prove_challenge,
    read_frame,
)

__all__ = ["resolve_fn", "run_worker", "main"]


def resolve_fn(spec: str) -> Callable[[Any], Any]:
    """Import ``module:qualname`` and return the callable it names."""
    module_name, sep, qualname = spec.partition(":")
    if not sep or not module_name or not qualname:
        raise ValueError(f"fn spec must look like 'module:qualname', got {spec!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"{spec} resolved to non-callable {obj!r}")
    return obj


async def _connect(
    host: str, port: int, attempts: int, backoff: float, backoff_cap: float
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open the coordinator connection, retrying with capped backoff."""
    delay = backoff
    for attempt in range(attempts):
        try:
            return await asyncio.open_connection(host, port)
        except OSError:
            if attempt == attempts - 1:
                raise
            await asyncio.sleep(delay)
            delay = min(delay * 2.0, backoff_cap)
    raise OSError("unreachable")  # pragma: no cover - loop always returns/raises


async def run_worker(
    host: str,
    port: int,
    fn: Callable[[Any], Any],
    *,
    worker_id: int = -1,
    heartbeat_period: float = 0.1,
    connect_attempts: int = 40,
    connect_backoff: float = 0.05,
    connect_backoff_cap: float = 2.0,
    require_secure: bool = False,
    reconnect_attempts: int = 0,
) -> int:
    """Run one worker until poisoned (returns 0) or orphaned.

    With ``require_secure`` the worker enforces the admission gate on
    its *own* side of the wire: any ``task`` frame arriving before the
    ``secure`` handshake completes is bounced with a ``refused`` frame,
    never executed — so even a hand-rolled client speaking the raw
    protocol cannot push work onto an unsecured channel.

    With ``reconnect_attempts > 0`` the worker *survives* losing its
    coordinator: on EOF it drops in-flight state (the coordinator's
    journal replays those tasks anyway), redials with capped exponential
    backoff and announces itself with a ``reattach`` frame carrying the
    id it was already assigned.  A promoted standby answers ``takeover``
    and the worker keeps serving under the new epoch.  The highest epoch
    ever seen is sticky: a session announcing a *lower* epoch is a stale
    predecessor, and every task frame it sends is bounced with a
    ``refused``/``stale epoch`` frame rather than executed — at most one
    coordinator incarnation can get work out of this worker.

    With ``reconnect_attempts <= 0`` (the default and the pre-v3
    behaviour) EOF hard-exits the process: there is nobody to ack to,
    and the hard exit guarantees no non-daemon executor thread keeps an
    orphan alive for the tail of a long task.
    """
    loop = asyncio.get_running_loop()
    pool = concurrent.futures.ThreadPoolExecutor(
        max_workers=1, thread_name_prefix=f"dworker-{worker_id}"
    )
    completed = 0
    max_epoch = -1  # highest coordinator epoch this worker has served
    attached = False  # whether a coordinator ever assigned us an id

    async def session() -> str:
        """One coordinator attachment; returns how it ended."""
        nonlocal worker_id, completed, max_epoch, attached
        reader, writer = await _connect(
            host,
            port,
            reconnect_attempts if attached else connect_attempts,
            connect_backoff,
            connect_backoff_cap,
        )
        greeting = {
            "type": "reattach" if attached else "hello",
            "worker_id": worker_id,
            "proto": PROTOCOL_VERSION,
        }
        if attached:
            greeting["completed"] = completed
        writer.write(encode_frame(greeting))
        welcome = await read_frame(reader)
        if welcome is not None and welcome.get("type") == "error":
            # the coordinator refused us (e.g. protocol-version
            # mismatch): surface its diagnosis instead of dying silently
            print(
                f"coordinator refused worker: {welcome.get('error', 'unknown error')}",
                file=sys.stderr,
            )
            writer.close()
            return "refused"
        if welcome is None or welcome.get("type") not in ("welcome", "takeover"):
            writer.close()
            return "bad-handshake"
        coord_proto = welcome.get("proto", PROTOCOL_VERSION)  # absent = legacy peer
        if coord_proto != PROTOCOL_VERSION:
            print(
                f"protocol version mismatch: this worker speaks version "
                f"{PROTOCOL_VERSION}, the coordinator announced {coord_proto}",
                file=sys.stderr,
            )
            writer.close()
            return "bad-handshake"
        worker_id = int(welcome.get("worker_id", worker_id))
        attached = True
        epoch = int(welcome.get("epoch", 0))
        stale = max_epoch >= 0 and epoch < max_epoch
        max_epoch = max(max_epoch, epoch)

        tasks: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()
        secured = False

        def send(message: dict) -> None:
            try:
                writer.write(encode_frame(message))
            except Exception:  # noqa: BLE001 - connection died under us
                pass

        async def reader_loop() -> str:
            nonlocal secured
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    # the coordinator vanished mid-connection
                    if reconnect_attempts <= 0:
                        os._exit(1)
                    return "eof"
                kind = frame.get("type")
                if kind == "task":
                    if stale:
                        # this session belongs to a superseded
                        # coordinator incarnation: never execute its
                        # work, tell it why
                        send(
                            {
                                "type": "refused",
                                "task_id": frame.get("task_id"),
                                "reason": "stale epoch",
                            }
                        )
                        continue
                    if require_secure and not secured:
                        # the worker-side half of the admission gate:
                        # bounce, never execute, until the channel
                        # handshake is done
                        send(
                            {
                                "type": "refused",
                                "task_id": frame.get("task_id"),
                                "reason": "security handshake required",
                            }
                        )
                        continue
                    await tasks.put(frame)
                elif kind == "secure":
                    send(
                        {
                            "type": "secured",
                            "proof": prove_challenge(str(frame.get("challenge", ""))),
                        }
                    )
                    secured = True
                elif kind == "poison":
                    await tasks.put(None)
                    return "poison"

        async def executor_loop() -> None:
            nonlocal completed
            while True:
                frame = await tasks.get()
                if frame is None:
                    send({"type": "bye", "completed": completed})
                    await writer.drain()
                    return
                task_id = frame["task_id"]
                # the coordinator's dispatch span rides in as a
                # traceparent; record this execution as a child span and
                # ship it back on the result frame, where it is
                # re-parented into the coordinator's trace store
                # (timestamps: epoch seconds, the same base the
                # coordinator's WallClock uses)
                parent_ctx = TraceContext.from_traceparent(frame.get("traceparent"))
                started = time.time()
                try:
                    payload = decode_payload(
                        frame["payload"], secured=frame.get("enc", False)
                    )
                    value = await loop.run_in_executor(pool, fn, payload)
                    out = {"type": "result", "task_id": task_id, "value": value}
                    json.dumps(value)  # fail here, not inside encode_frame
                except Exception as exc:  # noqa: BLE001 - surfaced as an error result
                    out = {
                        "type": "result",
                        "task_id": task_id,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                if parent_ctx is not None:
                    # the parent span id is unique per dispatch attempt,
                    # so the derived exec span id is too — replays never
                    # collide
                    ctx = parent_ctx.child(f"exec:{worker_id}:{parent_ctx.span_id}")
                    out["span"] = make_span_record(
                        ctx,
                        "task.exec",
                        actor=f"dworker-{worker_id}",
                        start=started,
                        end=time.time(),
                        attributes={
                            "worker": worker_id,
                            "pid": os.getpid(),
                            "outcome": "error" if "error" in out else "ok",
                        },
                    )
                completed += 1
                out["completed"] = completed
                send(out)

        async def heartbeat_loop() -> None:
            while True:
                await asyncio.sleep(heartbeat_period)
                send({"type": "hb", "completed": completed})

        t_reader = asyncio.ensure_future(reader_loop())
        t_exec = asyncio.ensure_future(executor_loop())
        t_hb = asyncio.ensure_future(heartbeat_loop())
        done, _ = await asyncio.wait(
            {t_reader, t_exec}, return_when=asyncio.FIRST_COMPLETED
        )
        outcome = "eof"
        try:
            if t_reader in done:
                outcome = t_reader.result()
                if outcome == "poison":
                    # let already-queued tasks finish, then bye
                    await t_exec
            else:
                # executor finished first: only happens after poison
                outcome = "poison"
        finally:
            for task in (t_reader, t_exec, t_hb):
                task.cancel()
            await asyncio.gather(t_reader, t_exec, t_hb, return_exceptions=True)
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass
        return outcome

    try:
        while True:
            try:
                outcome = await session()
            except OSError:
                # redial exhausted: the coordinator never came back
                return 1
            if outcome == "poison":
                return 0
            if outcome in ("refused", "bad-handshake"):
                return 1
            # "eof" with reconnect enabled: in-flight frames are dropped
            # (the journal replays them) and we redial the same port —
            # the standby coordinator rebinds it on promotion
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.dist_worker",
        description="attach one task-farm worker to a DistFarm coordinator",
    )
    parser.add_argument("--host", required=True, help="coordinator host")
    parser.add_argument("--port", type=int, required=True, help="coordinator port")
    parser.add_argument(
        "--fn", required=True, metavar="MODULE:QUALNAME",
        help="importable task function this worker executes",
    )
    parser.add_argument(
        "--worker-id", type=int, default=-1,
        help="id assigned by a spawning coordinator (-1: ask for one)",
    )
    parser.add_argument("--heartbeat-period", type=float, default=0.1)
    parser.add_argument("--connect-attempts", type=int, default=40)
    parser.add_argument("--connect-backoff", type=float, default=0.05)
    parser.add_argument(
        "--require-secure", action="store_true",
        help="refuse task frames until the secure-channel handshake completes",
    )
    parser.add_argument(
        "--reconnect-attempts", type=int, default=0,
        help="redials after losing the coordinator (0: exit on EOF, the "
        "pre-v3 behaviour); each redial backs off exponentially, capped",
    )
    args = parser.parse_args(argv)

    fn = resolve_fn(args.fn)
    try:
        return asyncio.run(
            run_worker(
                args.host,
                args.port,
                fn,
                worker_id=args.worker_id,
                heartbeat_period=args.heartbeat_period,
                connect_attempts=args.connect_attempts,
                connect_backoff=args.connect_backoff,
                require_secure=args.require_secure,
                reconnect_attempts=args.reconnect_attempts,
            )
        )
    except (OSError, KeyboardInterrupt):
        return 1


if __name__ == "__main__":
    sys.exit(main())
