"""Thread-based pipeline: live counterpart of the simulated pipeline.

Stages are callables connected by queues; each stage runs on its own
thread (or a :class:`~repro.runtime.farm_runtime.ThreadFarm` for a
farmed stage).  Mirrors the composition rule of the skeleton library:
``pipe(s1, s2, s3)`` with per-stage monitoring.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, List, Optional, Sequence

from ..sim.metrics import WindowRateEstimator
from .farm_runtime import ThreadFarm

__all__ = ["ThreadStage", "ThreadPipeline"]

_END = object()


class ThreadStage:
    """One pipeline stage: a thread applying ``fn`` to each item."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        *,
        name: str = "stage",
        rate_window: float = 5.0,
    ) -> None:
        self.fn = fn
        self.name = name
        self.input: "queue.Queue[Any]" = queue.Queue()
        self.output: Optional[queue.Queue] = None
        self.completed = 0
        self._t0 = time.monotonic()
        self.departure_est = WindowRateEstimator(rate_window, start_time=0.0)
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def now(self) -> float:
        return time.monotonic() - self._t0

    def _run(self) -> None:
        while True:
            item = self.input.get()
            if item is _END:
                if self.output is not None:
                    self.output.put(_END)
                return
            result = self.fn(item)
            self.completed += 1
            self.departure_est.mark(self.now())
            if self.output is not None:
                self.output.put(result)

    def join(self, timeout: float = 30.0) -> None:
        self._thread.join(timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()


class ThreadPipeline:
    """A linear pipeline of :class:`ThreadStage`s with a result queue."""

    def __init__(self, fns: Sequence[Callable[[Any], Any]], *, name: str = "tpipe") -> None:
        if len(fns) < 2:
            raise ValueError("pipeline needs at least two stages")
        self.name = name
        self.stages: List[ThreadStage] = [
            ThreadStage(fn, name=f"{name}.s{i}") for i, fn in enumerate(fns)
        ]
        for a, b in zip(self.stages, self.stages[1:]):
            a.output = b.input
        self.results: "queue.Queue[Any]" = queue.Queue()
        self.stages[-1].output = self.results
        self.submitted = 0

    def submit(self, item: Any) -> None:
        self.stages[0].input.put(item)
        self.submitted += 1

    def close(self) -> None:
        """Signal end of stream; stages shut down as it propagates."""
        self.stages[0].input.put(_END)

    def collect(self, count: int, timeout: float = 60.0) -> List[Any]:
        """Gather ``count`` results in arrival order."""
        out: List[Any] = []
        deadline = time.monotonic() + timeout
        while len(out) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"collected {len(out)}/{count}")
            try:
                item = self.results.get(timeout=remaining)
            except queue.Empty:
                raise TimeoutError(f"collected {len(out)}/{count}") from None
            if item is _END:
                break
            out.append(item)
        return out

    def run_to_completion(self, items: Sequence[Any], timeout: float = 60.0) -> List[Any]:
        """Feed ``items``, close the stream, return all results in order."""
        for item in items:
            self.submit(item)
        self.close()
        results = self.collect(len(items), timeout)
        self.join(timeout)
        return results

    def join(self, timeout: float = 30.0) -> None:
        for s in self.stages:
            s.join(timeout)

    def throughput(self) -> float:
        """Delivery rate at the final stage (items/second, windowed)."""
        last = self.stages[-1]
        return last.departure_est.rate(last.now())
